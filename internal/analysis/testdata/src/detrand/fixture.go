// Package detrand is the analyzer fixture: `// want` comments name the
// diagnostics the analyzer must report at exactly those lines.
package detrand

import (
	mrand "math/rand"
	"math/rand/v2"
)

func globalV2() int {
	return rand.IntN(10) // want `math/rand/v2\.IntN draws from the process-global source`
}

func globalV1() float64 {
	return mrand.Float64() // want `math/rand\.Float64 draws from the process-global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand/v2\.Shuffle draws from the process-global source`
}

// seeded is the sanctioned pattern: an explicit source keyed by the run's
// seed, drawn from via methods.
func seeded(seed uint64) int {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	return r.IntN(10)
}

func seededV1(seed int64) float64 {
	r := mrand.New(mrand.NewSource(seed))
	return r.Float64()
}

func zipf(seed uint64) uint64 {
	r := rand.New(rand.NewPCG(seed, 1))
	z := rand.NewZipf(r, 1.2, 1, 1<<20)
	return z.Uint64()
}

// hashDecide is the pattern internal/fault uses and the strictest form the
// analyzer endorses: no randomness source at all, just a splitmix64 hash
// of (seed, actor, event counter) compared against a rate. Unlike a shared
// seeded *rand.Rand, it is reproducible even when concurrent goroutines
// consume events in different interleavings, because each actor's schedule
// depends only on its own counter.
func hashDecide(seed, actor, n uint64, rate float64) bool {
	x := seed ^ 0x9e3779b97f4a7c15*(actor+1) ^ 0x94d049bb133111eb*(n+1)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}
