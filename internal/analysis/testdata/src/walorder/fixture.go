// Package walorder exercises the durability protocol: WAL append before
// ack, Sync before checkpoint publication, write-temp→fsync→rename.
package walorder

import "os"

// store is CheckpointStore-shaped.
type store struct {
	recs [][]byte
	ck   []byte
}

func (s *store) AppendWAL(rec []byte) error {
	s.recs = append(s.recs, rec)
	return nil
}

func (s *store) Sync() error { return nil }

func (s *store) SaveCheckpoint(op int, b []byte) error {
	s.ck = b
	return nil
}

// CheckpointUnsynced publishes a checkpoint over a buffered append: the
// checkpoint cursor can outrun the durable log.
func CheckpointUnsynced(s *store, rec, ck []byte) {
	s.AppendWAL(rec)
	s.SaveCheckpoint(1, ck) // want `checkpoint published while a WAL append may be unsynced`
}

// CheckpointSynced syncs first: clean.
func CheckpointSynced(s *store, rec, ck []byte) {
	s.AppendWAL(rec)
	s.Sync()
	s.SaveCheckpoint(1, ck)
}

// CheckpointBranch syncs on only one path: still a may-violation.
func CheckpointBranch(s *store, rec, ck []byte, fast bool) {
	s.AppendWAL(rec)
	if !fast {
		s.Sync()
	}
	s.SaveCheckpoint(1, ck) // want `checkpoint published while a WAL append may be unsynced`
}

// appendOnly leaves its append unsynced: the WALFact summary carries that
// to every caller.
func appendOnly(s *store, rec []byte) {
	s.AppendWAL(rec)
}

// CheckpointViaHelper inherits the unsynced append through the summary.
func CheckpointViaHelper(s *store, rec, ck []byte) {
	appendOnly(s, rec)
	s.SaveCheckpoint(1, ck) // want `checkpoint published while a WAL append may be unsynced`
}

// flush syncs on every path: its summary clears the caller's state.
func flush(s *store) {
	s.Sync()
}

// CheckpointViaFlush is clean through the AllSyncs summary.
func CheckpointViaFlush(s *store, rec, ck []byte) {
	s.AppendWAL(rec)
	flush(s)
	s.SaveCheckpoint(1, ck)
}

// AckBeforeAppend is the injected-bug smoke case: the WAL append moved
// after its ack. Exactly one channel-send finding.
func AckBeforeAppend(s *store, done chan struct{}, rec []byte) {
	done <- struct{}{} // want `state change is acknowledged \(channel send\) before its WAL append`
	s.AppendWAL(rec)
	s.Sync()
}

// AckAfterAppend is the correct order: clean.
func AckAfterAppend(s *store, done chan struct{}, rec []byte) {
	s.AppendWAL(rec)
	s.Sync()
	done <- struct{}{}
}

// reply is an annotated acknowledgement point.
//
//amrivet:ack callers treat the replied change as durable
func reply(done chan error) {
	done <- nil
}

// AckHelperBeforeAppend acknowledges through the annotated helper before
// appending.
func AckHelperBeforeAppend(s *store, done chan error, rec []byte) {
	reply(done) // want `state change is acknowledged \(call to reply\) before its WAL append`
	s.AppendWAL(rec)
	s.Sync()
}

// RenameUnsynced publishes a temp file whose contents may still be in the
// page cache.
func RenameUnsynced(path string, b []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(b)
	f.Close()
	return os.Rename(path+".tmp", path) // want `os.Rename while f has unsynced writes`
}

// RenameSynced follows write-temp, fsync, rename: clean.
func RenameSynced(path string, b []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	f.Write(b)
	f.Sync()
	f.Close()
	return os.Rename(path+".tmp", path)
}

// Suppressed records a deliberate exception with the standard directive.
func Suppressed(s *store, rec, ck []byte) {
	s.AppendWAL(rec)
	//amrivet:ignore[walorder] the checkpoint is advisory; recovery replays the WAL from offset zero
	s.SaveCheckpoint(1, ck)
}
