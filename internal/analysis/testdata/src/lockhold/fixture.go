// Package lockhold exercises the hot-lock cost analysis: Probe is an
// amrivet:hotpath root whose critical section performs every costly-op
// kind; work after the unlock, cold-side sections and amrivet:lockhold
// acceptances stay silent.
package lockhold

import (
	"fmt"
	"sync"
)

// Op mirrors a pipeline operator: a guarding lock plus the state kinds a
// careless critical section touches.
type Op struct {
	mu    sync.RWMutex
	inner sync.Mutex
	buf   []int
	tab   map[int]int
	ch    chan int
}

// Probe holds mu across allocation, map growth, channel traffic, I/O and a
// nested acquisition — every one a scheduler or allocator round-trip that
// extends the hold.
//
//amrivet:hotpath fixture probe root
func (o *Op) Probe(keys []int) int {
	o.mu.Lock()
	tmp := make([]int, 0, len(keys)) // want `allocation .make. while holding`
	o.tab[1] = 2                     // want `map write`
	o.ch <- 1                        // want `channel operation .send. while holding`
	v := <-o.ch                      // want `channel operation .receive. while holding`
	fmt.Sprintln(v)                  // want `I/O`
	o.inner.Lock()                   // want `nested lock acquisition`
	o.inner.Unlock()
	n := o.costly(keys) // want `callee transitively performs allocation`
	o.mu.Unlock()
	return n + len(tmp) + o.afterwards()
}

// costly allocates; charged to whichever section calls it under a lock.
func (o *Op) costly(keys []int) int {
	return len(make([]int, len(keys)))
}

// afterwards allocates too, but Probe calls it after the unlock: silent.
func (o *Op) afterwards() int {
	return len(make([]int, 4))
}

// Flat holds the lock across the costly call deliberately — the flat-index
// exclusivity contract — and accepts it in-line.
//
//amrivet:hotpath fixture flat probe root
func (o *Op) Flat(keys []int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	//amrivet:lockhold fixture: flat path demands exclusivity by contract
	return o.costly(keys)
}

// ColdSide holds its lock across an allocation but is not reachable from
// any hotpath root, so lockhold has nothing to say about it.
func (o *Op) ColdSide() {
	o.mu.Lock()
	x := make([]int, 9)
	o.buf = append(o.buf[:0], x...)
	o.mu.Unlock()
}

// Tune is reachable from a root but fenced behind a coldpath boundary:
// its lock-held allocation is the slow path's business.
//
//amrivet:hotpath fixture tuning entry
func (o *Op) Retune() int {
	return o.tune()
}

//amrivet:coldpath fixture deliberate slow path
func (o *Op) tune() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(make([]int, 1024))
}
