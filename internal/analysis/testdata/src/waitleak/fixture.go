// Package waitleak exercises the static goroutine-leak check: spawned
// goroutines whose blocking receive or Wait has no send, close or Done
// anywhere in the program, with cancellable selects and properly closed
// feeds staying silent.
package waitleak

import "sync"

// Worker carries the channel and WaitGroup plumbing under test.
type Worker struct {
	stop  chan struct{}
	dead  chan struct{}
	dead2 chan struct{}
	dead3 chan struct{}
	feed  chan int
	wg    sync.WaitGroup
	wg2   sync.WaitGroup
}

// Leak spawns a goroutine that receives from a channel nothing ever sends
// to or closes.
func (w *Worker) Leak() {
	go w.waitDead()
}

func (w *Worker) waitDead() {
	<-w.dead // want `blocking receive on .* has no matching send or close`
}

// LitLeak blocks directly inside the spawned literal on a local channel
// with no counterpart.
func (w *Worker) LitLeak() {
	never := make(chan int)
	go func() {
		<-never // want `goroutine leak`
	}()
	_ = never
}

// WgLeak waits on a WaitGroup nobody ever Dones.
func (w *Worker) WgLeak() {
	go w.waitForever()
}

func (w *Worker) waitForever() {
	w.wg.Wait() // want `Wait on .* has no matching Done`
}

// Doomed selects over two counterpart-free channels with no default: every
// case blocks forever.
func (w *Worker) Doomed() {
	go w.doomed()
}

func (w *Worker) doomed() {
	select { // want `select in .* blocks forever`
	case <-w.dead:
	case <-w.dead2:
	}
}

// Run spawns a drain whose feed is closed after use: silent.
func (w *Worker) Run() {
	go w.drain()
	for i := 0; i < 3; i++ {
		w.feed <- i
	}
	close(w.feed)
}

func (w *Worker) drain() {
	for range w.feed {
	}
}

// Watch blocks in a select that also has a cancel case — the close edge in
// Stop releases it, so the counterpart-free dead2 case is fine.
func (w *Worker) Watch() {
	go w.watch()
}

func (w *Worker) watch() {
	for {
		select {
		case <-w.dead2:
		case <-w.stop:
			return
		}
	}
}

// Stop is the cancel edge for watch.
func (w *Worker) Stop() {
	close(w.stop)
}

// Fork pairs its Wait with a Done: silent.
func (w *Worker) Fork() {
	w.wg2.Add(1)
	go w.task()
	w.wg2.Wait()
}

func (w *Worker) task() {
	w.wg2.Done()
}

// Quiet reproduces the leak shape under suppression: the forever-block is
// deliberate (process-lifetime goroutine).
func (w *Worker) Quiet() {
	go w.quiet()
}

func (w *Worker) quiet() {
	//amrivet:ignore[waitleak] fixture: intentional process-lifetime block
	<-w.dead3
}
