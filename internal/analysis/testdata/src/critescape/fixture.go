// Package critescape exercises reference escape from critical sections:
// aliases of lock-guarded storage grabbed under the lock and then
// returned, published or sent once the lock no longer protects them.
package critescape

import "sync"

// Store is lock-guarded state with reference-typed internals.
type Store struct {
	mu  sync.Mutex
	buf []int
	tab map[string]int
}

var leaked []int
var sink = make(chan []int, 1)

// Grab aliases the guarded slice under the lock and returns the alias
// after unlock: the caller now reads storage the lock no longer protects.
func (s *Store) Grab() []int {
	s.mu.Lock()
	view := s.buf
	s.mu.Unlock()
	return view // want `escapes the critical section via return`
}

// Direct is the deferred-unlock form: the alias outlives the section the
// moment the caller receives it.
func (s *Store) Direct() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf // want `escapes the critical section via return`
}

// Table leaks the guarded map the same way.
func (s *Store) Table() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tab // want `map storage`
}

// Publish stores the alias into a package variable.
func (s *Store) Publish() {
	s.mu.Lock()
	view := s.buf
	s.mu.Unlock()
	leaked = view // want `stored outside the critical section`
}

// Send hands the alias to another goroutine over a channel.
func (s *Store) Send() {
	s.mu.Lock()
	view := s.buf
	s.mu.Unlock()
	sink <- view // want `escapes the critical section via channel send`
}

// Copy is the sanctioned fix: a fresh slice owns its own storage, so
// nothing guarded escapes.
func (s *Store) Copy() []int {
	s.mu.Lock()
	out := append([]int(nil), s.buf...)
	s.mu.Unlock()
	return out
}

// Rebind shows taint clearing: the alias is replaced by a fresh copy
// before it leaves the function.
func (s *Store) Rebind() []int {
	s.mu.Lock()
	view := s.buf
	s.mu.Unlock()
	view = append([]int(nil), view...)
	return view
}

// Internal stores a guarded reference back into the owner's own state:
// still inside the section's protection, so silent.
func (s *Store) Internal() {
	s.mu.Lock()
	s.buf = s.buf[:0]
	s.mu.Unlock()
}

// Scalar escapes by value, not by reference: silent.
func (s *Store) Scalar() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf)
	return n
}

// Handoff is a deliberate ownership transfer, accepted in-line: the store
// forgets the slice before the caller takes it.
func (s *Store) Handoff() []int {
	s.mu.Lock()
	view := s.buf
	s.buf = nil
	s.mu.Unlock()
	//amrivet:ignore[critescape] fixture: ownership transfer, the store forgets the slice
	return view
}
