// Package lockorder seeds the tuner-vs-operator deadlock shape: the tuner
// locks its own mutex and then reaches into an operator (locking the
// operator's mutex), while the operator's snapshot path locks in the
// reverse order. Each acquisition is fine in isolation; only the global
// order graph exposes the cycle.
package lockorder

import "sync"

// Tuner mirrors the index tuner: it applies epoch decisions to operators.
type Tuner struct {
	mu    sync.Mutex
	epoch int
}

// Operator mirrors a pipeline operator holding per-route state.
type Operator struct {
	mu     sync.Mutex
	routes int
}

// Apply holds the tuner's lock while pushing the epoch into the operator:
// tuner.mu is acquired before operator.mu.
func (t *Tuner) Apply(op *Operator) {
	t.mu.Lock()
	defer t.mu.Unlock()
	op.Set(t.epoch) // want `lock-order cycle`
}

// Set is the operator-side half of Apply's ordering.
func (op *Operator) Set(epoch int) {
	op.mu.Lock()
	defer op.mu.Unlock()
	op.routes = epoch
}

// Snapshot holds the operator's lock while reading tuner statistics:
// operator.mu before tuner.mu — the reverse of Apply's order.
func (op *Operator) Snapshot(t *Tuner) int {
	op.mu.Lock()
	defer op.mu.Unlock()
	return t.Stats() // want `lock-order cycle`
}

// Stats is the tuner-side half of Snapshot's ordering.
func (t *Tuner) Stats() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Counter demonstrates the self-deadlock case: bump re-acquires a mutex
// its caller already holds, and Go mutexes are not reentrant.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add calls a locking helper while holding the same lock.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want `may already be held`
}

func (c *Counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Consistent ordering between two locks never reported: every path takes
// source.mu before sink.mu.
type Source struct{ mu sync.Mutex }

// Sink is the second lock of the consistent pair.
type Sink struct {
	mu sync.Mutex
	n  int
}

// Feed nests the locks directly, in the canonical order.
func Feed(a *Source, b *Sink) {
	a.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// FeedAgain establishes the same order through a call, which is consistent
// with Feed and therefore silent.
func FeedAgain(a *Source, b *Sink) {
	a.mu.Lock()
	defer a.mu.Unlock()
	Drain(b)
}

// Drain locks only the sink.
func Drain(b *Sink) {
	b.mu.Lock()
	b.n--
	b.mu.Unlock()
}

// Released shows flow sensitivity: the first lock is dropped before the
// second is taken, so no ordering edge exists in either direction.
func Released(b *Sink, a *Source) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// QuietTuner and QuietOp reproduce the cycle shape under suppression: the
// inversion is acknowledged in-line, so the analyzer stays silent.
type QuietTuner struct {
	mu sync.Mutex
	n  int
}

// QuietOp is the operator half of the suppressed pair.
type QuietOp struct {
	mu sync.Mutex
	n  int
}

// ApplyQuiet holds the tuner lock while reaching the operator.
func (t *QuietTuner) ApplyQuiet(op *QuietOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//amrivet:ignore[lockorder] fixture: inversion is documented and fenced by the run loop
	op.Inc()
}

// Inc locks only the operator.
func (op *QuietOp) Inc() {
	op.mu.Lock()
	op.n++
	op.mu.Unlock()
}

// ReadQuiet holds the operator lock while reaching the tuner — the reverse
// edge of the suppressed pair.
func (op *QuietOp) ReadQuiet(t *QuietTuner) {
	op.mu.Lock()
	defer op.mu.Unlock()
	//amrivet:ignore[lockorder] fixture: reverse edge of the documented inversion
	t.Poke()
}

// Poke locks only the tuner.
func (t *QuietTuner) Poke() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}
