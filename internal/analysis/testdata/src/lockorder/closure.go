package lockorder

import "sync"

// Ledger and Journal are a fresh pair of lock classes (disjoint from the
// Tuner/Operator cycle in fixture.go) that document the analyzer's
// function-value blind spot: the forward ordering below is direct, while
// the inverse ordering exists only inside a closure stored into a field
// and invoked through a function value. A closure's body does not run at
// its definition site and calls through function values are unmodelled,
// so neither side contributes the inverse edge — there must be NO phantom
// lock-order cycle reported anywhere in this file.
type Ledger struct {
	mu      sync.Mutex
	balance int
	// flush is installed by WireFlush and invoked through the function
	// value in Post; the call graph has no edge to its body.
	flush func()
}

// Journal is the second lock class of the would-be cycle.
type Journal struct {
	mu      sync.Mutex
	entries int
}

// Record establishes the direct ordering Ledger.mu -> Journal.mu.
func (l *Ledger) Record(j *Journal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	j.mu.Lock()
	j.entries++
	j.mu.Unlock()
	l.balance++
}

// WireFlush stores a closure that, if it were attributed to this function
// or to its eventual caller, would establish the inverse ordering
// Journal.mu -> Ledger.mu and close a cycle with Record. It is attributed
// to nothing: definition is not execution.
func (l *Ledger) WireFlush(j *Journal) {
	l.flush = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		l.mu.Lock()
		l.balance = 0
		l.mu.Unlock()
		j.entries++
	}
}

// Post invokes the stored closure through the function value; the
// dispatch is unmodelled, so no ordering flows through it either.
func (l *Ledger) Post() {
	if l.flush != nil {
		l.flush()
	}
}
