// Package barrierflush exercises the flushWorkers discipline: fields
// written by spawned goroutines may only be read after a happens-before
// barrier, and merges over goroutine-written maps must be canonical.
package barrierflush

import "sync"

// scratch is a per-worker accumulator, written only by its goroutine.
type scratch struct {
	ndec uint64
	obs  []uint64
}

// pool owns the workers and joins them with a WaitGroup.
type pool struct {
	wg      sync.WaitGroup
	workers []*scratch
}

// RunEarlyRead is the injected-bug smoke case: the scratch counter is read
// while the workers are still running. Exactly one finding.
func (p *pool) RunEarlyRead() uint64 {
	for _, sc := range p.workers {
		p.wg.Add(1)
		go func(sc *scratch) {
			defer p.wg.Done()
			sc.ndec++
		}(sc)
	}
	total := p.workers[0].ndec // want `scratch.ndec is written by a goroutine spawned above and read here before any barrier`
	p.wg.Wait()
	return total
}

// RunBarriered reads only after the WaitGroup barrier: clean.
func (p *pool) RunBarriered() uint64 {
	for _, sc := range p.workers {
		p.wg.Add(1)
		go func(sc *scratch) {
			defer p.wg.Done()
			sc.ndec++
		}(sc)
	}
	p.wg.Wait()
	return p.workers[0].ndec
}

// snapshotNdec reads worker scratch: callers before a barrier inherit the
// violation through the field-access summary.
func (p *pool) snapshotNdec() uint64 {
	return p.workers[0].ndec
}

// RunHelperRead reaches the dirty field through a helper call.
func (p *pool) RunHelperRead() uint64 {
	for _, sc := range p.workers {
		p.wg.Add(1)
		go func(sc *scratch) {
			defer p.wg.Done()
			sc.ndec++
		}(sc)
	}
	v := p.snapshotNdec() // want `call to snapshotNdec reads .*scratch.ndec, written by a goroutine spawned above, before any barrier`
	p.wg.Wait()
	return v
}

// parkJoin is the dispatcher-style barrier: annotated so callers treat it
// like WaitGroup.Wait.
//
//amrivet:barrier every worker parks before this returns
func (p *pool) parkJoin() {
	p.wg.Wait()
}

// RunParkJoin reads after the annotated barrier: clean.
func (p *pool) RunParkJoin() uint64 {
	for _, sc := range p.workers {
		p.wg.Add(1)
		go func(sc *scratch) {
			defer p.wg.Done()
			sc.ndec++
		}(sc)
	}
	p.parkJoin()
	return p.workers[0].ndec
}

// agg merges goroutine-filled partitions.
type agg struct {
	wg    sync.WaitGroup
	parts map[string]uint64
	out   []uint64
}

// MergeUnsorted joins correctly but merges by map iteration: the appended
// order differs run to run even though the data race is gone.
func (a *agg) MergeUnsorted() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.parts["x"] = 1
	}()
	a.wg.Wait()
	for _, v := range a.parts { // want `merge loop ranges over goroutine-written map field .*agg.parts`
		a.out = append(a.out, v)
	}
}

// MergeCounted folds commutatively inside the range (no append), so the
// iteration order cannot surface: clean.
func (a *agg) MergeCounted() uint64 {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.parts["x"] = 1
	}()
	a.wg.Wait()
	var sum uint64
	for _, v := range a.parts {
		sum += v
	}
	return sum
}

// Suppressed records a deliberate pre-barrier read with the standard
// directive.
func (p *pool) Suppressed() uint64 {
	for _, sc := range p.workers {
		p.wg.Add(1)
		go func(sc *scratch) {
			defer p.wg.Done()
			sc.ndec++
		}(sc)
	}
	//amrivet:ignore[barrierflush] advisory telemetry snapshot; a stale read is acceptable here
	v := p.workers[0].ndec
	p.wg.Wait()
	return v
}
