// Package errdrop exercises discarded-error detection: statement-position
// calls that throw away an error result are reported unless the callee
// provably never fails, the drop is explicit (_ =), or the finding is
// acknowledged in-line.
package errdrop

import "errors"

func mayFail(n int) error {
	if n > 0 {
		return errors.New("boom")
	}
	return nil
}

func lookup(k int) (int, error) {
	if k > 0 {
		return k, nil
	}
	return 0, errors.New("missing")
}

// neverFails always returns a nil error; discarding it is harmless and
// the NeverFailsFact records that.
func neverFails() error {
	return nil
}

// wraps forwards a never-failing callee, so it never fails either — the
// fact propagates through the in-package fixpoint.
func wraps() error {
	return neverFails()
}

func drops() {
	mayFail(1)   // want `call discards the error returned by mayFail`
	lookup(1)    // want `call discards the error returned by lookup`
	neverFails() // not reported: provably nil
	wraps()      // not reported: transitively nil

	go mayFail(2)    // want `go statement discards the error`
	defer mayFail(3) // want `deferred call discards the error`

	_ = mayFail(4) // not reported: explicit drop
	if v, _ := lookup(2); v > 0 {
		_ = v // not reported: explicit drop of the error position
	}
	if err := mayFail(5); err != nil {
		return
	}

	//amrivet:ignore[errdrop] fixture: teardown error is unactionable here
	mayFail(6)
}
