// Package falseshare exercises cache-line layout checking: contended
// fields packed into one line but written from distinct goroutine
// contexts, and unpadded slices of contended element types.
package falseshare

import "sync/atomic"

// Counters packs two atomics written by different goroutines into the
// same cache line: every write invalidates the other writer's line.
type Counters struct {
	hits   atomic.Uint64
	misses atomic.Uint64 // want `share a 64-byte cache line`
}

// Padded separates the same two writers by a full cache line: silent.
type Padded struct {
	hits   atomic.Uint64
	_      [56]byte
	misses atomic.Uint64
}

// Spin starts the two writer goroutines.
func Spin(c *Counters, p *Padded) {
	go hitter(c, p)
	go misser(c, p)
}

func hitter(c *Counters, p *Padded) {
	for i := 0; i < 1000; i++ {
		c.hits.Add(1)
		p.hits.Add(1)
	}
}

func misser(c *Counters, p *Padded) {
	for i := 0; i < 1000; i++ {
		c.misses.Add(1)
		p.misses.Add(1)
	}
}

// Pair moves together: both fields are written by exactly the same
// functions, so one goroutine at a time updates both — no false sharing
// between them, whatever the layout.
type Pair struct {
	lo atomic.Uint64
	hi atomic.Uint64
}

func bump(p *Pair) {
	p.lo.Add(1)
	p.hi.Add(1)
}

// SpinPair runs bump concurrently; same writer set, still silent.
func SpinPair(p *Pair) {
	go bump(p)
	go bump(p)
}

// MakeCounters allocates 8-byte atomic elements back to back: eight
// independent counters per cache line.
func MakeCounters(n int) []atomic.Uint64 {
	return make([]atomic.Uint64, n) // want `adjacent elements share a 64-byte cache line`
}

// PaddedSlot is the sanctioned fix for slice elements: one slot per line.
type PaddedSlot struct {
	n atomic.Uint64
	_ [56]byte
}

// MakeSlots allocates cache-line-sized elements: silent.
func MakeSlots(n int) []PaddedSlot {
	return make([]PaddedSlot, n)
}

// Accepted reproduces the shared-line shape under suppression: the
// counters are cold and the layout is deliberate.
type Accepted struct {
	a atomic.Uint64
	//amrivet:ignore[falseshare] fixture: cold counters, contention measured irrelevant
	b atomic.Uint64
}

// SpinAccepted runs the two suppressed writers.
func SpinAccepted(x *Accepted) {
	go incA(x)
	go incB(x)
}

func incA(x *Accepted) { x.a.Add(1) }
func incB(x *Accepted) { x.b.Add(1) }
