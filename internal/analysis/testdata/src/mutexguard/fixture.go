// Package mutexguard is the analyzer fixture: `// want` comments name the
// diagnostics the analyzer must report at exactly those lines.
package mutexguard

import "sync"

// server's mu guards the contiguous field group that follows it.
type server struct {
	mu    sync.Mutex
	conns int
	state string

	name string // separate group: unguarded
}

func (s *server) good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns
}

func (s *server) bad() int {
	return s.conns // want `server\.conns is guarded by "mu" but accessed without a preceding s\.mu\.Lock`
}

func (s *server) badWrite() {
	s.state = "dirty" // want `server\.state is guarded by "mu"`
}

func (s *server) nameOK() string { return s.name }

func newServer() *server {
	s := &server{conns: 1}
	s.state = "init" // freshly constructed local: not yet shared, no lock needed
	return s
}

func lockOtherBase(a, b *server) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.conns + b.conns // want `server\.conns is guarded by "mu" but accessed without a preceding b\.mu\.Lock`
}

type rw struct {
	mu sync.RWMutex
	n  int
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// annotated uses the explicit comment convention across a group break.
type annotated struct {
	lock sync.Mutex

	// count is guarded by lock.
	count int
}

func (a *annotated) bump() {
	a.count++ // want `annotated\.count is guarded by "lock"`
}

func (a *annotated) bumpLocked() {
	a.lock.Lock()
	a.count++
	a.lock.Unlock()
}

// lockForUpdate is a lock helper: it acquires mu and returns still holding
// it, so the analyzer exports an AcquiresMutexFact for it and callers get
// credit for the acquisition.
func (s *server) lockForUpdate() {
	s.mu.Lock()
	s.conns++ // locked directly above: accepted
}

// viaHelper accesses guarded state after calling the lock helper: the
// exported fact makes this equivalent to a direct Lock call.
func (s *server) viaHelper() int {
	s.lockForUpdate()
	defer s.mu.Unlock()
	return s.conns
}

// helperWrongBase locks one instance but touches another: still reported.
func helperWrongBase(a, b *server) int {
	a.lockForUpdate()
	defer a.mu.Unlock()
	return b.conns // want `server\.conns is guarded by "mu" but accessed without a preceding b\.mu\.Lock`
}

func byValue(s server) { // want `parameter passes lock by value`
	_ = s
}

func (s server) valueRecv() {} // want `receiver passes lock by value`

// closeLocked follows the *Locked naming convention: the caller holds
// s.mu by contract, so receiver accesses are accepted without a lexical
// Lock in this body.
func (s *server) closeLocked() {
	s.conns = 0
}

// closeOther ends in "Locked" but touches a DIFFERENT instance: the
// contract only covers the receiver, so this is still reported.
func (s *server) copyFromLocked(o *server) {
	s.conns = o.conns // want `server\.conns is guarded by "mu" but accessed without a preceding o\.mu\.Lock`
}
