// Package stem is the wallclock fixture: its package name places it in
// amrivet's hot-path set, so wall-clock reads here must be diagnosed.
package stem

import "time"

func stamp() time.Time {
	return time.Now() // want `time\.Now in hot-path package stem: wall-clock timing must flow through internal/metrics`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in hot-path package stem`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until in hot-path package stem`
}

// Constructing durations or parsing timestamps is fine — only reading the
// wall clock is banned.
func windowSpan(ticks int) time.Duration {
	return time.Duration(ticks) * time.Second
}

func suppressed() time.Time {
	//amrivet:ignore[wallclock] fixture demonstrates scoped suppression
	return time.Now()
}
