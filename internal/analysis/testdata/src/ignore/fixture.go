// Package stem exercises the amrivet:ignore directive machinery; the
// package name places it in the wallclock hot-path set. This fixture is
// asserted manually by TestIgnoreDirectives (not via want comments, which
// cannot annotate the directive lines themselves).
package stem

import "time"

func suppressedSameLine() time.Time {
	return time.Now() //amrivet:ignore fixture scaffolding, not a hot path
}

func suppressedLineAbove() time.Time {
	//amrivet:ignore[wallclock] fixture demonstrates scoped suppression
	return time.Now()
}

func wrongScope() time.Time {
	//amrivet:ignore[detrand] names a different analyzer: wallclock must still fire
	return time.Now()
}

func bareDirective() time.Time {
	//amrivet:ignore
	return time.Now()
}
