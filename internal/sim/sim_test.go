package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockChargeAndSeconds(t *testing.T) {
	c := NewClock(100)
	c.Charge(50)
	c.Charge(150)
	if c.Spent() != 200 {
		t.Fatalf("Spent = %v", c.Spent())
	}
	if c.Seconds() != 2 {
		t.Fatalf("Seconds = %v", c.Seconds())
	}
}

func TestMemoryMeter(t *testing.T) {
	m := NewMemoryMeter(1000)
	a, b := 300, 300
	m.Register("a", func() int { return a })
	m.Register("b", func() int { return b })
	if m.Used() != 600 {
		t.Fatalf("Used = %d", m.Used())
	}
	if m.OverCap() {
		t.Fatal("600 <= 1000 should not be over cap")
	}
	b = 800
	if !m.OverCap() {
		t.Fatal("1100 > 1000 should be over cap")
	}
	if !strings.Contains(m.Breakdown(), "b=800") {
		t.Fatalf("Breakdown = %q", m.Breakdown())
	}
}

func TestMemoryMeterDisabledCap(t *testing.T) {
	m := NewMemoryMeter(0)
	m.Register("x", func() int { return 1 << 40 })
	if m.OverCap() {
		t.Fatal("cap 0 must disable the OOM check")
	}
}

func TestDefaultCostsSane(t *testing.T) {
	ct := DefaultCosts()
	if ct.Hash <= 0 || ct.Compare <= 0 {
		t.Fatal("hash and compare must be positive")
	}
	if ct.Compare >= ct.Hash {
		t.Fatal("comparisons should be cheaper than hashing in the default table")
	}
}

// Property: charges accumulate additively regardless of split.
func TestClockAdditive(t *testing.T) {
	f := func(parts []uint16) bool {
		c1 := NewClock(10)
		c2 := NewClock(10)
		var total Units
		for _, p := range parts {
			c1.Charge(Units(p))
			total += Units(p)
		}
		c2.Charge(total)
		return c1.Spent() == c2.Spent()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
