// Package sim is the simulation substrate standing in for the paper's CAPE
// deployment on real machines: a virtual clock measured in abstract CPU
// cost units, a per-tick CPU budget that forces unfinished work to backlog,
// and a memory meter with a hard cap that terminates a run the way the
// paper's out-of-memory kills do.
//
// The substitution preserves the paper's shape-level results because every
// figure compares systems by relative throughput and relative death time,
// which depend only on the ratios of the per-operation costs — taken here
// from the paper's own cost model (Table I) — not on absolute wall-clock
// speed.
package sim

import "fmt"

// Units is simulated CPU work. One virtual second of machine capacity is
// CostTable.BudgetPerTick units.
type Units float64

// CostTable prices the primitive operations, mirroring Table I's C_h and
// C_c plus the bookkeeping the engine performs around them.
type CostTable struct {
	// Hash is C_h: computing one hash function over one attribute.
	Hash Units
	// Compare is C_c: one value comparison against a stored tuple.
	Compare Units
	// Bucket is the overhead of probing one bucket (pointer chase).
	Bucket Units
	// DirScan is the overhead of examining one directory entry during a
	// masked sparse iteration.
	DirScan Units
	// Insert is the fixed, configuration-independent part of storing or
	// expiring one tuple (C_insert/C_delete; identical across contenders).
	Insert Units
	// KeyMaint is the cost of creating or removing one auxiliary index key
	// entry (allocation + hash-table surgery): the per-access-module
	// maintenance burden of the multi-hash-index design.
	KeyMaint Units
	// Observe is one assessment observation (hash-table bump).
	Observe Units
	// Route is one routing decision for one composite.
	Route Units
	// Emit is delivering one join result.
	Emit Units
}

// DefaultCosts uses C_h = 1 as the unit, comparisons slightly cheaper, and
// small bookkeeping overheads — the regime of the paper's model where scan
// terms dominate when indices fit poorly.
func DefaultCosts() CostTable {
	return CostTable{
		Hash:     1.0,
		Compare:  0.25,
		Bucket:   0.1,
		DirScan:  0.02,
		Insert:   0.5,
		KeyMaint: 8.0,
		Observe:  0.05,
		Route:    0.05,
		Emit:     0.05,
	}
}

// Category buckets charged work for the cost breakdown: where did the CPU
// actually go? The paper's failure narratives are category statements —
// hash baselines die of maintenance, scan-bound systems of search.
type Category int

const (
	// CatMaintain is insert/expire/key upkeep and index migration.
	CatMaintain Category = iota
	// CatSearch is probe-side hashing, bucket probes and comparisons.
	CatSearch
	// CatAssess is assessment bookkeeping.
	CatAssess
	// CatRoute is routing decisions and result emission.
	CatRoute
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatMaintain:
		return "maintain"
	case CatSearch:
		return "search"
	case CatAssess:
		return "assess"
	case CatRoute:
		return "route"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Clock accumulates virtual time in cost units and converts to seconds via
// the machine capacity.
type Clock struct {
	// UnitsPerSecond is the machine's capacity: how many cost units one
	// virtual second of CPU absorbs.
	UnitsPerSecond Units
	spent          Units
	byCat          [numCategories]Units
}

// NewClock returns a clock for the given capacity.
func NewClock(unitsPerSecond Units) *Clock {
	return &Clock{UnitsPerSecond: unitsPerSecond}
}

// Charge records uncategorized work (counted under CatRoute's bookkeeping
// bucket).
func (c *Clock) Charge(u Units) { c.ChargeCat(CatRoute, u) }

// ChargeCat records work under a category.
func (c *Clock) ChargeCat(cat Category, u Units) {
	c.spent += u
	c.byCat[cat] += u
}

// Breakdown returns the per-category shares of all charged work (fractions
// of Spent; zero map when nothing was charged).
func (c *Clock) Breakdown() map[string]float64 {
	out := make(map[string]float64, int(numCategories))
	if c.spent == 0 {
		return out
	}
	for cat := Category(0); cat < numCategories; cat++ {
		out[cat.String()] = float64(c.byCat[cat] / c.spent)
	}
	return out
}

// Spent returns total work charged.
func (c *Clock) Spent() Units { return c.spent }

// Seconds converts total work to virtual seconds.
func (c *Clock) Seconds() float64 { return float64(c.spent / c.UnitsPerSecond) }

// MemoryMeter tracks the simulated resident set of a run as named
// components whose sizes are re-polled on demand (states, assessors,
// queues). Exceeding the cap is the run-ending OOM condition.
type MemoryMeter struct {
	CapBytes   int
	components []component
}

type component struct {
	name string
	size func() int
}

// NewMemoryMeter returns a meter with the given cap; cap <= 0 disables the
// OOM check.
func NewMemoryMeter(capBytes int) *MemoryMeter {
	return &MemoryMeter{CapBytes: capBytes}
}

// Register adds a component whose current size the meter polls.
func (m *MemoryMeter) Register(name string, size func() int) {
	m.components = append(m.components, component{name: name, size: size})
}

// Used returns the current total resident size.
func (m *MemoryMeter) Used() int {
	total := 0
	for _, c := range m.components {
		total += c.size()
	}
	return total
}

// OverCap reports whether the resident set exceeds the cap.
func (m *MemoryMeter) OverCap() bool {
	return m.CapBytes > 0 && m.Used() > m.CapBytes
}

// OverRatio reports whether the resident set exceeds ratio·cap — the soft
// watermark the engine's graceful-degradation path triggers on before the
// hard cap kills the run. Always false with no cap or a zero ratio.
func (m *MemoryMeter) OverRatio(ratio float64) bool {
	return m.CapBytes > 0 && ratio > 0 && float64(m.Used()) > ratio*float64(m.CapBytes)
}

// Breakdown renders the per-component sizes for diagnostics.
func (m *MemoryMeter) Breakdown() string {
	s := ""
	for i, c := range m.components {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", c.name, c.size())
	}
	return s
}
