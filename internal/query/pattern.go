// Package query models SPJ (select-project-join) stream queries the way the
// paper's Section II defines them: streams, equality join predicates, the
// per-state join attribute set (JAS), and search access patterns over that
// set, including the search-benefit lattice that Dependent Index Assessment
// exploits.
package query

import (
	"fmt"
	"math/bits"
	"strings"
)

// Pattern is a search access pattern over a state's join attribute set,
// encoded as a bitmask: bit i is set when JAS attribute i is constrained by
// the search request, clear when it is the wild card *. The integer value of
// the mask is exactly the paper's binary representation BR(ap), so a Pattern
// doubles as its own hash-table key.
//
// The zero Pattern is the full scan <*,*,...,*>.
type Pattern uint32

// MaxAttrs is the largest join attribute set a single state may carry. The
// paper's experiments use 3; 32 leaves generous room while keeping Pattern a
// single machine word.
const MaxAttrs = 32

// PatternOf builds a pattern from the listed attribute positions.
func PatternOf(attrs ...int) Pattern {
	var p Pattern
	for _, a := range attrs {
		p = p.With(a)
	}
	return p
}

// FullPattern returns the pattern constraining all n attributes.
func FullPattern(n int) Pattern {
	if n >= MaxAttrs {
		return Pattern(^uint32(0))
	}
	return Pattern(1)<<uint(n) - 1
}

// Has reports whether attribute i is constrained.
func (p Pattern) Has(i int) bool { return p&(1<<uint(i)) != 0 }

// With returns p with attribute i constrained.
func (p Pattern) With(i int) Pattern { return p | 1<<uint(i) }

// Without returns p with attribute i wild.
func (p Pattern) Without(i int) Pattern { return p &^ (1 << uint(i)) }

// Count returns the number of constrained attributes (the lattice level,
// counting the empty pattern as level 0 at the top).
func (p Pattern) Count() int { return bits.OnesCount32(uint32(p)) }

// BR returns the paper's binary representation of the pattern as an integer.
func (p Pattern) BR() uint32 { return uint32(p) }

// Benefits reports the paper's search-benefit relation p ≺ q: an index
// built on p's attributes benefits a search using q iff every attribute in
// p also appears in q. Every pattern benefits itself.
func (p Pattern) Benefits(q Pattern) bool { return p&q == p }

// ProperBenefits reports p ≺ q with p ≠ q.
func (p Pattern) ProperBenefits(q Pattern) bool { return p != q && p.Benefits(q) }

// Parents returns the lattice parents of p: each pattern obtained by
// removing exactly one constrained attribute. The empty pattern has no
// parents (it is the lattice top). Results are appended to dst to let
// callers reuse buffers.
func (p Pattern) Parents(dst []Pattern) []Pattern {
	for m := uint32(p); m != 0; m &= m - 1 {
		low := m & -m
		dst = append(dst, p&^Pattern(low))
	}
	return dst
}

// Children returns the lattice children of p within a JAS of n attributes:
// each pattern obtained by adding one attribute not yet constrained.
func (p Pattern) Children(n int, dst []Pattern) []Pattern {
	for i := 0; i < n; i++ {
		if !p.Has(i) {
			dst = append(dst, p.With(i))
		}
	}
	return dst
}

// String renders the pattern in the paper's vector notation using letters
// A, B, C, ... for constrained attributes and * for wild ones, sized by the
// highest constrained attribute (use StringN for an explicit width).
func (p Pattern) String() string {
	n := 32 - bits.LeadingZeros32(uint32(p))
	if n == 0 {
		n = 1
	}
	return p.StringN(n)
}

// StringN renders the pattern as an n-ary vector, e.g. <A,*,C>.
func (p Pattern) StringN(n int) string {
	var b strings.Builder
	b.WriteByte('<')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if p.Has(i) {
			if i < 26 {
				b.WriteByte(byte('A' + i))
			} else {
				fmt.Fprintf(&b, "a%d", i)
			}
		} else {
			b.WriteByte('*')
		}
	}
	b.WriteByte('>')
	return b.String()
}

// ParsePattern parses the vector notation produced by StringN: letters (or
// any non-* token) mark constrained positions, * marks wild ones. The
// surrounding angle brackets are optional.
func ParsePattern(s string) (Pattern, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "<")
	s = strings.TrimSuffix(s, ">")
	if s == "" {
		return 0, fmt.Errorf("query: empty pattern %q", s)
	}
	var p Pattern
	parts := strings.Split(s, ",")
	if len(parts) > MaxAttrs {
		return 0, fmt.Errorf("query: pattern %q exceeds %d attributes", s, MaxAttrs)
	}
	for i, tok := range parts {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return 0, fmt.Errorf("query: empty position %d in pattern %q", i, s)
		}
		if tok != "*" {
			p = p.With(i)
		}
	}
	return p, nil
}

// AllPatterns calls fn for every pattern over n attributes, including the
// empty (full-scan) pattern, in increasing BR order. It stops early if fn
// returns false.
func AllPatterns(n int, fn func(Pattern) bool) {
	total := uint32(1) << uint(n)
	for v := uint32(0); v < total; v++ {
		if !fn(Pattern(v)) {
			return
		}
	}
}

// NumPatterns returns the number of non-empty access patterns over n join
// attributes: sum over k=1..n of C(n,k) = 2^n - 1, matching Section IV-B.
func NumPatterns(n int) int { return 1<<uint(n) - 1 }
