package query

import (
	"fmt"
	"sort"
)

// StreamSpec describes one stream in the FROM clause.
type StreamSpec struct {
	// Name is the stream's display name (e.g. "StreamA").
	Name string
	// Arity is the number of attributes each tuple carries. Join
	// attributes are a subset of these positions.
	Arity int
}

// Predicate is an equality join predicate Left.LeftAttr = Right.RightAttr
// from the WHERE clause. The paper's join expressions include inequalities;
// the index design (like any hash-partitioned scheme) accelerates equality,
// which is what the evaluation exercises, so this model is equality-only.
type Predicate struct {
	Left, LeftAttr   int // stream id and attribute position on the left
	Right, RightAttr int // stream id and attribute position on the right
}

// String renders the predicate like "S0.a1 = S2.a0".
func (p Predicate) String() string {
	return fmt.Sprintf("S%d.a%d = S%d.a%d", p.Left, p.LeftAttr, p.Right, p.RightAttr)
}

// JoinAttr is one entry of a state's join attribute set (JAS): a tuple
// attribute that appears in at least one join predicate, together with the
// partner it joins to.
type JoinAttr struct {
	// Attr is the attribute position within the state's own tuples.
	Attr int
	// Partner is the stream id on the other side of the predicate.
	Partner int
	// PartnerAttr is the attribute position within the partner's tuples.
	PartnerAttr int
}

// StateSpec is the per-stream view a STeM operator needs: the stream's JAS
// in a fixed order, so access patterns over it are well defined.
type StateSpec struct {
	// Stream is the stream this state stores tuples from.
	Stream int
	// JAS lists the join attributes in pattern-bit order: pattern bit i
	// refers to JAS[i].
	JAS []JoinAttr
	// byPartner maps a partner stream id to the JAS position joining it,
	// assuming at most one predicate per stream pair (the paper's setup).
	byPartner map[int]int
}

// NumAttrs returns the size of the state's join attribute set.
func (s *StateSpec) NumAttrs() int { return len(s.JAS) }

// PosForPartner returns the JAS position that joins this state to the given
// partner stream, and whether such a predicate exists.
func (s *StateSpec) PosForPartner(partner int) (int, bool) {
	p, ok := s.byPartner[partner]
	return p, ok
}

// PatternForDone returns the access pattern a probe into this state uses
// when the probing composite already covers the streams in doneMask: every
// JAS attribute whose partner stream is covered becomes a constrained
// position. This is exactly how a tuple's query path determines its search
// criteria (paper Section I).
func (s *StateSpec) PatternForDone(doneMask uint32) Pattern {
	var p Pattern
	for i, ja := range s.JAS {
		if doneMask&(1<<uint(ja.Partner)) != 0 {
			p = p.With(i)
		}
	}
	return p
}

// Query is a compiled SPJ query: streams, predicates, window length, and
// the derived per-state specs.
type Query struct {
	// Streams lists the FROM-clause streams; stream ids index this slice.
	Streams []StreamSpec
	// Preds lists the WHERE-clause equality join predicates.
	Preds []Predicate
	// WindowTicks is the sliding-window length in virtual time ticks; a
	// stored tuple expires WindowTicks after its arrival timestamp.
	WindowTicks int64
	// Filters are the WHERE clause's selection predicates, applied at
	// ingest (see AddFilter).
	Filters []Filter
	// States holds the derived per-stream state specs, indexed by stream.
	States []*StateSpec
}

// Compile validates the streams and predicates and derives the per-state
// join attribute sets. Every stream must appear, every predicate must
// reference valid streams/attributes, and no stream pair may be joined by
// more than one predicate (the paper's experimental setup: "every stream is
// joined to each of the 3 other streams via a unique join attribute").
func Compile(streams []StreamSpec, preds []Predicate, windowTicks int64) (*Query, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("query: no streams")
	}
	if windowTicks <= 0 {
		return nil, fmt.Errorf("query: window must be positive, got %d", windowTicks)
	}
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	for _, p := range preds {
		if p.Left < 0 || p.Left >= len(streams) || p.Right < 0 || p.Right >= len(streams) {
			return nil, fmt.Errorf("query: predicate %v references unknown stream", p)
		}
		if p.Left == p.Right {
			return nil, fmt.Errorf("query: self-join predicate %v not supported", p)
		}
		if p.LeftAttr < 0 || p.LeftAttr >= streams[p.Left].Arity {
			return nil, fmt.Errorf("query: predicate %v: bad left attribute", p)
		}
		if p.RightAttr < 0 || p.RightAttr >= streams[p.Right].Arity {
			return nil, fmt.Errorf("query: predicate %v: bad right attribute", p)
		}
		k := pair{min(p.Left, p.Right), max(p.Left, p.Right)}
		if seen[k] {
			return nil, fmt.Errorf("query: streams %d and %d joined by more than one predicate", k.a, k.b)
		}
		seen[k] = true
	}

	q := &Query{Streams: streams, Preds: preds, WindowTicks: windowTicks}
	q.States = make([]*StateSpec, len(streams))
	for s := range streams {
		spec := &StateSpec{Stream: s, byPartner: make(map[int]int)}
		for _, p := range preds {
			switch s {
			case p.Left:
				spec.JAS = append(spec.JAS, JoinAttr{Attr: p.LeftAttr, Partner: p.Right, PartnerAttr: p.RightAttr})
			case p.Right:
				spec.JAS = append(spec.JAS, JoinAttr{Attr: p.RightAttr, Partner: p.Left, PartnerAttr: p.LeftAttr})
			}
		}
		// Fix JAS order by own attribute position so pattern bits are
		// stable regardless of predicate listing order.
		sort.Slice(spec.JAS, func(i, j int) bool { return spec.JAS[i].Attr < spec.JAS[j].Attr })
		if len(spec.JAS) > MaxAttrs {
			return nil, fmt.Errorf("query: stream %d has %d join attributes, max %d", s, len(spec.JAS), MaxAttrs)
		}
		for i, ja := range spec.JAS {
			spec.byPartner[ja.Partner] = i
		}
		q.States[s] = spec
	}
	return q, nil
}

// NumStreams returns the number of streams in the FROM clause.
func (q *Query) NumStreams() int { return len(q.Streams) }

// AllDoneMask returns the composite coverage mask meaning "all streams
// joined".
func (q *Query) AllDoneMask() uint32 { return 1<<uint(len(q.Streams)) - 1 }

// FourWay builds the paper's experimental query: a 4-way join across 4
// streams where every pair of streams is joined via its own attribute, so
// every state carries 3 join attributes and supports 7 possible non-empty
// access patterns. Attribute layout: stream s's attribute k joins it to its
// k-th partner in increasing stream order.
func FourWay(windowTicks int64) *Query {
	const n = 4
	streams := make([]StreamSpec, n)
	for i := range streams {
		streams[i] = StreamSpec{Name: fmt.Sprintf("Stream%c", 'A'+i), Arity: n - 1}
	}
	attrFor := func(s, partner int) int {
		// Partners of s in increasing order occupy attrs 0..n-2.
		k := 0
		for t := 0; t < n; t++ {
			if t == s {
				continue
			}
			if t == partner {
				return k
			}
			k++
		}
		panic("query: partner == self")
	}
	var preds []Predicate
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			preds = append(preds, Predicate{
				Left: a, LeftAttr: attrFor(a, b),
				Right: b, RightAttr: attrFor(b, a),
			})
		}
	}
	q, err := Compile(streams, preds, windowTicks)
	if err != nil {
		panic("query: FourWay construction invalid: " + err.Error())
	}
	return q
}

// PackageTracking builds the single-state sensor schema from the paper's
// Section I-A example: tuples with priority code (A1), package id (A2) and
// location id (A3). It is modelled as one stream joined to three lookup
// streams so that all combinations of the three attributes arise as access
// patterns.
func PackageTracking(windowTicks int64) *Query {
	streams := []StreamSpec{
		{Name: "Sensors", Arity: 3},
		{Name: "PriorityFeed", Arity: 1},
		{Name: "PackageFeed", Arity: 1},
		{Name: "LocationFeed", Arity: 1},
	}
	preds := []Predicate{
		{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}, // A1: priority code
		{Left: 0, LeftAttr: 1, Right: 2, RightAttr: 0}, // A2: package id
		{Left: 0, LeftAttr: 2, Right: 3, RightAttr: 0}, // A3: location id
	}
	q, err := Compile(streams, preds, windowTicks)
	if err != nil {
		panic("query: PackageTracking construction invalid: " + err.Error())
	}
	return q
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewChain builds an n-way chain join: stream i joins stream i+1 via its
// own attribute pair. End streams carry one join attribute, middle streams
// two. It rejects n < 2 and surfaces compilation failures as errors —
// the form callers with runtime-provided shapes should use.
func NewChain(n int, windowTicks int64) (*Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("query: Chain needs at least 2 streams, got %d", n)
	}
	streams := make([]StreamSpec, n)
	for i := range streams {
		arity := 2
		if i == 0 || i == n-1 {
			arity = 1
		}
		streams[i] = StreamSpec{Name: fmt.Sprintf("Chain%c", 'A'+i), Arity: arity}
	}
	var preds []Predicate
	for i := 0; i+1 < n; i++ {
		leftAttr := 1 // middle streams: attr 0 joins left, attr 1 joins right
		if i == 0 {
			leftAttr = 0
		}
		preds = append(preds, Predicate{Left: i, LeftAttr: leftAttr, Right: i + 1, RightAttr: 0})
	}
	q, err := Compile(streams, preds, windowTicks)
	if err != nil {
		return nil, fmt.Errorf("query: Chain construction invalid: %w", err)
	}
	return q, nil
}

// Chain is NewChain for compile-time-constant shapes: it panics on an
// invalid n instead of returning an error.
func Chain(n int, windowTicks int64) *Query {
	q, err := NewChain(n, windowTicks)
	if err != nil {
		panic(err.Error())
	}
	return q
}

// NewStar builds an n-way star join: stream 0 is the hub, joined to each
// of the n-1 satellites via its own attribute. The hub's state carries n-1
// join attributes (2^(n-1)-1 possible access patterns — the setting where
// compact assessment matters most); satellites carry one each. It rejects
// n < 2 and surfaces compilation failures as errors.
func NewStar(n int, windowTicks int64) (*Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("query: Star needs at least 2 streams, got %d", n)
	}
	streams := make([]StreamSpec, n)
	streams[0] = StreamSpec{Name: "Hub", Arity: n - 1}
	for i := 1; i < n; i++ {
		streams[i] = StreamSpec{Name: fmt.Sprintf("Sat%d", i), Arity: 1}
	}
	var preds []Predicate
	for i := 1; i < n; i++ {
		preds = append(preds, Predicate{Left: 0, LeftAttr: i - 1, Right: i, RightAttr: 0})
	}
	q, err := Compile(streams, preds, windowTicks)
	if err != nil {
		return nil, fmt.Errorf("query: Star construction invalid: %w", err)
	}
	return q, nil
}

// Star is NewStar for compile-time-constant shapes: it panics on an
// invalid n instead of returning an error.
func Star(n int, windowTicks int64) *Query {
	q, err := NewStar(n, windowTicks)
	if err != nil {
		panic(err.Error())
	}
	return q
}
