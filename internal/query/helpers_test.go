package query

import "amri/internal/tuple"

// tupleLike builds tuples for filter tests without importing test fixtures.
type tupleLike struct {
	stream int
	attrs  []uint64
}

func (tl *tupleLike) tuple() *tuple.Tuple {
	return tuple.New(tl.stream, 0, 0, tl.attrs)
}
