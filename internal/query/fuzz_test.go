package query

import "testing"

// FuzzParsePattern: the parser must never panic, and anything it accepts
// must round-trip through StringN at the width it was parsed from.
func FuzzParsePattern(f *testing.F) {
	f.Add("<A,*,C>")
	f.Add("<*,*,*>")
	f.Add("A,B")
	f.Add("")
	f.Add("<,>")
	f.Add("<A,B,C,D,E,F,G,H>")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePattern(s)
		if err != nil {
			return
		}
		// Determine the width the input implied and round-trip.
		n := 1
		for _, c := range s {
			if c == ',' {
				n++
			}
		}
		if n > MaxAttrs {
			return
		}
		back, err := ParsePattern(p.StringN(n))
		if err != nil {
			t.Fatalf("rendered pattern %q does not re-parse: %v", p.StringN(n), err)
		}
		if back != p {
			t.Fatalf("round trip %q -> %v -> %v", s, p, back)
		}
	})
}
