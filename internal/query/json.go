package query

import (
	"encoding/json"
	"fmt"
	"io"

	"amri/internal/tuple"
)

// jsonSpec is the on-disk query description consumed by cmd/amriquery:
//
//	{
//	  "streams":    [{"name": "A", "arity": 3}, ...],
//	  "predicates": [{"left": 0, "leftAttr": 0, "right": 1, "rightAttr": 0}],
//	  "filters":    [{"stream": 0, "attr": 1, "op": "<", "value": 100}],
//	  "window":     60
//	}
type jsonSpec struct {
	Streams    []jsonStream `json:"streams"`
	Predicates []jsonPred   `json:"predicates"`
	Filters    []jsonFilter `json:"filters,omitempty"`
	Window     int64        `json:"window"`
}

type jsonStream struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
}

type jsonPred struct {
	Left      int `json:"left"`
	LeftAttr  int `json:"leftAttr"`
	Right     int `json:"right"`
	RightAttr int `json:"rightAttr"`
}

type jsonFilter struct {
	Stream int         `json:"stream"`
	Attr   int         `json:"attr"`
	Op     string      `json:"op"`
	Value  tuple.Value `json:"value"`
}

// ParseJSON reads a query description and compiles it, filters included.
func ParseJSON(r io.Reader) (*Query, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec jsonSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("query: bad JSON spec: %w", err)
	}
	streams := make([]StreamSpec, len(spec.Streams))
	for i, s := range spec.Streams {
		streams[i] = StreamSpec{Name: s.Name, Arity: s.Arity}
	}
	preds := make([]Predicate, len(spec.Predicates))
	for i, p := range spec.Predicates {
		preds[i] = Predicate{Left: p.Left, LeftAttr: p.LeftAttr, Right: p.Right, RightAttr: p.RightAttr}
	}
	q, err := Compile(streams, preds, spec.Window)
	if err != nil {
		return nil, err
	}
	for _, f := range spec.Filters {
		op, err := ParseCmpOp(f.Op)
		if err != nil {
			return nil, err
		}
		if err := q.AddFilter(Filter{Stream: f.Stream, Attr: f.Attr, Op: op, Value: f.Value}); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// MarshalJSON encodes a compiled query back into the on-disk description
// (the inverse of ParseJSON).
func (q *Query) MarshalJSON() ([]byte, error) {
	spec := jsonSpec{Window: q.WindowTicks}
	for _, s := range q.Streams {
		spec.Streams = append(spec.Streams, jsonStream{Name: s.Name, Arity: s.Arity})
	}
	for _, p := range q.Preds {
		spec.Predicates = append(spec.Predicates, jsonPred{
			Left: p.Left, LeftAttr: p.LeftAttr, Right: p.Right, RightAttr: p.RightAttr})
	}
	for _, f := range q.Filters {
		spec.Filters = append(spec.Filters, jsonFilter{
			Stream: f.Stream, Attr: f.Attr, Op: f.Op.String(), Value: f.Value})
	}
	return json.MarshalIndent(spec, "", "  ")
}
