package query

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseJSONRoundTrip(t *testing.T) {
	q := FourWay(60)
	if err := q.AddFilter(Filter{Stream: 0, Attr: 1, Op: OpLt, Value: 100}); err != nil {
		t.Fatal(err)
	}
	b, err := q.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStreams() != 4 || len(back.Preds) != 6 || back.WindowTicks != 60 {
		t.Fatalf("round trip shape wrong: %d streams %d preds window %d",
			back.NumStreams(), len(back.Preds), back.WindowTicks)
	}
	if len(back.Filters) != 1 || back.Filters[0].Op != OpLt || back.Filters[0].Value != 100 {
		t.Fatalf("filters lost: %+v", back.Filters)
	}
	for s := range back.States {
		if back.States[s].NumAttrs() != q.States[s].NumAttrs() {
			t.Fatalf("state %d JAS changed", s)
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"streams": [], "predicates": [], "window": 10}`,                // no streams
		`{"streams": [{"name":"A","arity":1}], "window": 0}`,             // zero window
		`{"streams": [{"name":"A","arity":1}], "window": 5, "bogus": 1}`, // unknown field
		`{"streams": [{"name":"A","arity":1},{"name":"B","arity":1}],
		  "predicates": [{"left":0,"leftAttr":0,"right":9,"rightAttr":0}], "window": 5}`, // bad stream ref
		`{"streams": [{"name":"A","arity":1},{"name":"B","arity":1}],
		  "predicates": [{"left":0,"leftAttr":0,"right":1,"rightAttr":0}],
		  "filters": [{"stream":0,"attr":0,"op":"~","value":1}], "window": 5}`, // bad op
	}
	for _, c := range cases {
		if _, err := ParseJSON(strings.NewReader(c)); err == nil {
			t.Errorf("spec %q should fail", c)
		}
	}
}

func TestParseJSONMinimal(t *testing.T) {
	const spec = `{
	  "streams": [{"name": "L", "arity": 2}, {"name": "R", "arity": 1}],
	  "predicates": [{"left": 0, "leftAttr": 1, "right": 1, "rightAttr": 0}],
	  "window": 30
	}`
	q, err := ParseJSON(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if q.States[0].NumAttrs() != 1 || q.States[1].NumAttrs() != 1 {
		t.Fatal("JAS derivation wrong")
	}
	if len(q.Filters) != 0 {
		t.Fatal("unexpected filters")
	}
}
