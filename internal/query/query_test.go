package query

import (
	"strings"
	"testing"
)

func TestCompileValidation(t *testing.T) {
	streams := []StreamSpec{{Name: "A", Arity: 2}, {Name: "B", Arity: 2}}
	ok := []Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 1}}

	if _, err := Compile(nil, nil, 10); err == nil {
		t.Error("no streams should fail")
	}
	if _, err := Compile(streams, ok, 0); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := Compile(streams, []Predicate{{Left: 0, LeftAttr: 0, Right: 5, RightAttr: 0}}, 10); err == nil {
		t.Error("unknown stream should fail")
	}
	if _, err := Compile(streams, []Predicate{{Left: 0, LeftAttr: 0, Right: 0, RightAttr: 1}}, 10); err == nil {
		t.Error("self join should fail")
	}
	if _, err := Compile(streams, []Predicate{{Left: 0, LeftAttr: 7, Right: 1, RightAttr: 0}}, 10); err == nil {
		t.Error("bad left attribute should fail")
	}
	if _, err := Compile(streams, []Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 9}}, 10); err == nil {
		t.Error("bad right attribute should fail")
	}
	dup := []Predicate{
		{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
		{Left: 1, LeftAttr: 1, Right: 0, RightAttr: 1},
	}
	if _, err := Compile(streams, dup, 10); err == nil {
		t.Error("duplicate stream pair should fail")
	}
	if _, err := Compile(streams, ok, 10); err != nil {
		t.Errorf("valid query failed: %v", err)
	}
}

func TestFourWayShape(t *testing.T) {
	q := FourWay(60)
	if q.NumStreams() != 4 {
		t.Fatalf("NumStreams = %d, want 4", q.NumStreams())
	}
	if len(q.Preds) != 6 {
		t.Fatalf("predicates = %d, want 6 (all pairs)", len(q.Preds))
	}
	for s, spec := range q.States {
		if spec.NumAttrs() != 3 {
			t.Fatalf("state %d has %d join attrs, want 3", s, spec.NumAttrs())
		}
		if NumPatterns(spec.NumAttrs()) != 7 {
			t.Fatalf("state %d: want 7 possible access patterns", s)
		}
		// Each state must join every other stream exactly once.
		for p := 0; p < 4; p++ {
			if p == s {
				continue
			}
			if _, ok := spec.PosForPartner(p); !ok {
				t.Errorf("state %d missing partner %d", s, p)
			}
		}
		if _, ok := spec.PosForPartner(s); ok {
			t.Errorf("state %d should not partner itself", s)
		}
	}
}

func TestFourWayPredicatesAreConsistent(t *testing.T) {
	// The predicate attribute positions must agree with the JAS derivation:
	// probing state R with a tuple from L must use the JAS position whose
	// partner is L and whose PartnerAttr is L's side of the predicate.
	q := FourWay(60)
	for _, p := range q.Preds {
		right := q.States[p.Right]
		pos, ok := right.PosForPartner(p.Left)
		if !ok {
			t.Fatalf("state %d lacks partner %d", p.Right, p.Left)
		}
		ja := right.JAS[pos]
		if ja.Attr != p.RightAttr || ja.PartnerAttr != p.LeftAttr {
			t.Errorf("pred %v: JAS entry %+v mismatched", p, ja)
		}
	}
}

func TestPatternForDone(t *testing.T) {
	q := FourWay(60)
	// Probe into state 2 (StreamC) with only stream 0 covered: pattern has
	// exactly the one bit whose partner is stream 0.
	spec := q.States[2]
	p := spec.PatternForDone(1 << 0)
	if p.Count() != 1 {
		t.Fatalf("pattern = %v, want exactly one attribute", p)
	}
	pos, _ := spec.PosForPartner(0)
	if !p.Has(pos) {
		t.Fatalf("pattern %v missing partner-0 position %d", p, pos)
	}

	// Streams 0 and 1 covered: two attributes.
	p2 := spec.PatternForDone(1<<0 | 1<<1)
	if p2.Count() != 2 {
		t.Fatalf("pattern = %v, want two attributes", p2)
	}
	if !p.Benefits(p2) {
		t.Fatal("growing coverage must grow the pattern monotonically")
	}

	// All other streams covered: the full pattern.
	p3 := spec.PatternForDone(1<<0 | 1<<1 | 1<<3)
	if p3 != FullPattern(3) {
		t.Fatalf("pattern = %v, want full", p3)
	}

	// Own stream in the mask is ignored.
	if spec.PatternForDone(1<<2) != 0 {
		t.Fatal("own stream must not constrain anything")
	}
}

func TestAllDoneMask(t *testing.T) {
	q := FourWay(60)
	if q.AllDoneMask() != 0b1111 {
		t.Fatalf("AllDoneMask = %b", q.AllDoneMask())
	}
}

func TestPackageTrackingShape(t *testing.T) {
	q := PackageTracking(60)
	spec := q.States[0]
	if spec.NumAttrs() != 3 {
		t.Fatalf("sensor state has %d join attrs, want 3", spec.NumAttrs())
	}
	// Attributes must appear in tuple-position order A1, A2, A3.
	for i, ja := range spec.JAS {
		if ja.Attr != i {
			t.Errorf("JAS[%d].Attr = %d, want %d", i, ja.Attr, i)
		}
	}
}

func TestPredicateString(t *testing.T) {
	s := Predicate{Left: 0, LeftAttr: 1, Right: 2, RightAttr: 0}.String()
	if !strings.Contains(s, "S0.a1") || !strings.Contains(s, "S2.a0") {
		t.Errorf("Predicate.String() = %q", s)
	}
}

func TestChainShape(t *testing.T) {
	q := Chain(4, 60)
	if q.NumStreams() != 4 || len(q.Preds) != 3 {
		t.Fatalf("chain shape: %d streams, %d preds", q.NumStreams(), len(q.Preds))
	}
	if q.States[0].NumAttrs() != 1 || q.States[3].NumAttrs() != 1 {
		t.Fatal("chain ends must have one join attribute")
	}
	if q.States[1].NumAttrs() != 2 || q.States[2].NumAttrs() != 2 {
		t.Fatal("chain middles must have two join attributes")
	}
	// Middles join both neighbours.
	if _, ok := q.States[1].PosForPartner(0); !ok {
		t.Fatal("middle must join left neighbour")
	}
	if _, ok := q.States[1].PosForPartner(2); !ok {
		t.Fatal("middle must join right neighbour")
	}
	if _, ok := q.States[1].PosForPartner(3); ok {
		t.Fatal("chain middles must not join non-neighbours")
	}
}

func TestStarShape(t *testing.T) {
	q := Star(5, 60)
	if q.NumStreams() != 5 || len(q.Preds) != 4 {
		t.Fatalf("star shape: %d streams, %d preds", q.NumStreams(), len(q.Preds))
	}
	if q.States[0].NumAttrs() != 4 {
		t.Fatalf("hub has %d join attrs, want 4", q.States[0].NumAttrs())
	}
	if NumPatterns(q.States[0].NumAttrs()) != 15 {
		t.Fatal("hub should support 15 access patterns")
	}
	for s := 1; s < 5; s++ {
		if q.States[s].NumAttrs() != 1 {
			t.Fatalf("satellite %d has %d join attrs", s, q.States[s].NumAttrs())
		}
		if _, ok := q.States[s].PosForPartner(0); !ok {
			t.Fatalf("satellite %d must join the hub", s)
		}
	}
	// Satellites are not joined to each other: probing one with only
	// another satellite covered yields the empty pattern (cartesian).
	if q.States[2].PatternForDone(1<<1) != 0 {
		t.Fatal("satellites must not be joined to each other")
	}
}

func TestChainStarPanicOnTooFew(t *testing.T) {
	for _, f := range []func(){func() { Chain(1, 10) }, func() { Star(1, 10) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for n < 2")
				}
			}()
			f()
		}()
	}
}

func TestFiltersValidateAndApply(t *testing.T) {
	q := FourWay(60)
	if err := q.AddFilter(Filter{Stream: 9, Attr: 0, Op: OpEq, Value: 1}); err == nil {
		t.Error("unknown stream should fail")
	}
	if err := q.AddFilter(Filter{Stream: 0, Attr: 9, Op: OpEq, Value: 1}); err == nil {
		t.Error("bad attribute should fail")
	}
	if err := q.AddFilter(Filter{Stream: 0, Attr: 0, Op: CmpOp(99), Value: 1}); err == nil {
		t.Error("bad operator should fail")
	}
	if err := q.AddFilter(Filter{Stream: 0, Attr: 0, Op: OpLt, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if q.FilterCount(0) != 1 || q.FilterCount(1) != 0 {
		t.Fatal("FilterCount wrong")
	}
	pass := &tupleLike{stream: 0, attrs: []uint64{5, 0, 0}}
	fail := &tupleLike{stream: 0, attrs: []uint64{15, 0, 0}}
	other := &tupleLike{stream: 1, attrs: []uint64{15, 0, 0}}
	if !q.Accepts(pass.tuple()) || q.Accepts(fail.tuple()) || !q.Accepts(other.tuple()) {
		t.Fatal("filter application wrong")
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v    uint64
		want bool
	}{
		{OpEq, 10, true}, {OpEq, 9, false},
		{OpNe, 9, true}, {OpNe, 10, false},
		{OpLt, 9, true}, {OpLt, 10, false},
		{OpLe, 10, true}, {OpLe, 11, false},
		{OpGt, 11, true}, {OpGt, 10, false},
		{OpGe, 10, true}, {OpGe, 9, false},
	}
	for _, c := range cases {
		f := Filter{Stream: 0, Attr: 0, Op: c.op, Value: 10}
		got := f.Matches((&tupleLike{stream: 0, attrs: []uint64{c.v}}).tuple())
		if got != c.want {
			t.Errorf("%d %s 10 = %v, want %v", c.v, c.op, got, c.want)
		}
	}
	// Operator parsing round trip.
	for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		back, err := ParseCmpOp(op.String())
		if err != nil || back != op {
			t.Errorf("ParseCmpOp(%s) = %v, %v", op, back, err)
		}
	}
	if _, err := ParseCmpOp("~"); err == nil {
		t.Error("bad op should fail to parse")
	}
}

// TestNewChainNewStarErrors: the error-returning constructors reject bad
// stream counts without panicking and build the same queries as the
// panicking forms otherwise.
func TestNewChainNewStarErrors(t *testing.T) {
	for name, f := range map[string]func(int, int64) (*Query, error){
		"NewChain": NewChain, "NewStar": NewStar,
	} {
		for _, n := range []int{-1, 0, 1} {
			if q, err := f(n, 10); err == nil || q != nil {
				t.Errorf("%s(%d) = %v, %v; want nil, error", name, n, q, err)
			}
		}
	}
	cq, err := NewChain(4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if pq := Chain(4, 60); pq.NumStreams() != cq.NumStreams() || len(pq.Preds) != len(cq.Preds) {
		t.Fatal("NewChain and Chain built different queries")
	}
	sq, err := NewStar(5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if pq := Star(5, 60); pq.NumStreams() != sq.NumStreams() || len(pq.Preds) != len(sq.Preds) {
		t.Fatal("NewStar and Star built different queries")
	}
}
