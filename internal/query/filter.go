package query

import (
	"fmt"

	"amri/internal/tuple"
)

// CmpOp is a comparison operator for selection filters.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// ParseCmpOp parses the operator notation of String.
func ParseCmpOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("query: unknown comparison operator %q", s)
	}
}

// Filter is a selection predicate from the WHERE clause: a comparison of
// one stream attribute against a constant, applied at ingest (the classic
// push-down — tuples failing a selection never reach any state).
type Filter struct {
	Stream int
	Attr   int
	Op     CmpOp
	Value  tuple.Value
}

// String renders like "S0.a1 < 42".
func (f Filter) String() string {
	return fmt.Sprintf("S%d.a%d %s %d", f.Stream, f.Attr, f.Op, f.Value)
}

// Matches evaluates the filter against a tuple's attribute value.
func (f Filter) Matches(t *tuple.Tuple) bool {
	v := t.Attrs[f.Attr]
	switch f.Op {
	case OpEq:
		return v == f.Value
	case OpNe:
		return v != f.Value
	case OpLt:
		return v < f.Value
	case OpLe:
		return v <= f.Value
	case OpGt:
		return v > f.Value
	case OpGe:
		return v >= f.Value
	default:
		return false
	}
}

// AddFilter validates and attaches a selection filter to the query.
func (q *Query) AddFilter(f Filter) error {
	if f.Stream < 0 || f.Stream >= len(q.Streams) {
		return fmt.Errorf("query: filter %v references unknown stream", f)
	}
	if f.Attr < 0 || f.Attr >= q.Streams[f.Stream].Arity {
		return fmt.Errorf("query: filter %v attribute out of range", f)
	}
	if _, err := ParseCmpOp(f.Op.String()); err != nil {
		return fmt.Errorf("query: filter %v: %w", f, err)
	}
	q.Filters = append(q.Filters, f)
	return nil
}

// Accepts reports whether a tuple passes every filter on its stream.
func (q *Query) Accepts(t *tuple.Tuple) bool {
	for _, f := range q.Filters {
		if f.Stream == t.Stream && !f.Matches(t) {
			return false
		}
	}
	return true
}

// FilterCount returns the number of filters on the given stream (the
// per-ingest comparison work the engine charges).
func (q *Query) FilterCount(stream int) int {
	n := 0
	for _, f := range q.Filters {
		if f.Stream == stream {
			n++
		}
	}
	return n
}
