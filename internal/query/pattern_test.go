package query

import (
	"testing"
	"testing/quick"
)

func TestPatternOfAndHas(t *testing.T) {
	p := PatternOf(0, 2)
	if !p.Has(0) || p.Has(1) || !p.Has(2) {
		t.Fatalf("PatternOf(0,2) membership wrong: %b", p)
	}
	if p.Count() != 2 {
		t.Fatalf("Count = %d, want 2", p.Count())
	}
}

func TestBRMatchesPaper(t *testing.T) {
	// Section IV-C1: with JAS {A,B,C}, ap <A,*,*> has BR 100b = 4 and
	// <*,B,C> has BR 011b = 3. The paper writes the vector left-to-right
	// with A as the high bit; our bit 0 is attribute A, so BR(<A,*,*>)
	// is 1 and BR(<*,B,C>) is 6. The encoding differs only by bit order;
	// what matters (and what we pin here) is that distinct patterns get
	// distinct small integers usable as direct table keys.
	a := PatternOf(0)     // <A,*,*>
	bc := PatternOf(1, 2) // <*,B,C>
	if a.BR() == bc.BR() {
		t.Fatal("distinct patterns share a BR")
	}
	if a.BR() != 1 || bc.BR() != 6 {
		t.Fatalf("BR values drifted: a=%d bc=%d", a.BR(), bc.BR())
	}
}

func TestFullPattern(t *testing.T) {
	if FullPattern(3) != PatternOf(0, 1, 2) {
		t.Fatalf("FullPattern(3) = %b", FullPattern(3))
	}
	if FullPattern(0) != 0 {
		t.Fatalf("FullPattern(0) = %b", FullPattern(0))
	}
}

func TestWithWithout(t *testing.T) {
	p := Pattern(0).With(1).With(3)
	if p != PatternOf(1, 3) {
		t.Fatalf("With chain = %b", p)
	}
	if p.Without(1) != PatternOf(3) {
		t.Fatalf("Without = %b", p.Without(1))
	}
	if p.Without(2) != p {
		t.Fatal("Without of absent attribute must be identity")
	}
}

func TestBenefits(t *testing.T) {
	// Definition 1: ap1 ≺ ap2 iff every attribute of ap1 is in ap2.
	a := PatternOf(0)
	ab := PatternOf(0, 1)
	bc := PatternOf(1, 2)
	cases := []struct {
		p, q Pattern
		want bool
	}{
		{a, ab, true},
		{ab, a, false},
		{a, a, true},
		{Pattern(0), bc, true}, // full scan benefits everything
		{a, bc, false},
		{ab, bc, false},
	}
	for _, c := range cases {
		if got := c.p.Benefits(c.q); got != c.want {
			t.Errorf("%v.Benefits(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
	if a.ProperBenefits(a) {
		t.Error("ProperBenefits must exclude equality")
	}
	if !a.ProperBenefits(ab) {
		t.Error("a should properly benefit ab")
	}
}

func TestParentsAndChildren(t *testing.T) {
	p := PatternOf(0, 2)
	parents := p.Parents(nil)
	if len(parents) != 2 {
		t.Fatalf("got %d parents, want 2", len(parents))
	}
	want := map[Pattern]bool{PatternOf(0): true, PatternOf(2): true}
	for _, pa := range parents {
		if !want[pa] {
			t.Errorf("unexpected parent %v", pa)
		}
	}
	if got := Pattern(0).Parents(nil); len(got) != 0 {
		t.Fatalf("empty pattern must have no parents, got %v", got)
	}

	kids := PatternOf(0).Children(3, nil)
	if len(kids) != 2 {
		t.Fatalf("got %d children, want 2", len(kids))
	}
	wantKids := map[Pattern]bool{PatternOf(0, 1): true, PatternOf(0, 2): true}
	for _, k := range kids {
		if !wantKids[k] {
			t.Errorf("unexpected child %v", k)
		}
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	cases := []struct {
		p Pattern
		n int
		s string
	}{
		{PatternOf(0), 3, "<A,*,*>"},
		{PatternOf(1, 2), 3, "<*,B,C>"},
		{PatternOf(0, 1, 2), 3, "<A,B,C>"},
		{Pattern(0), 3, "<*,*,*>"},
	}
	for _, c := range cases {
		if got := c.p.StringN(c.n); got != c.s {
			t.Errorf("StringN(%d) = %q, want %q", c.n, got, c.s)
		}
		back, err := ParsePattern(c.s)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", c.s, err)
		}
		if back != c.p {
			t.Errorf("round trip %q -> %v, want %v", c.s, back, c.p)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	for _, bad := range []string{"", "<>", "<A,,B>"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) should fail", bad)
		}
	}
}

func TestAllPatternsAndCount(t *testing.T) {
	var got []Pattern
	AllPatterns(3, func(p Pattern) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 8 {
		t.Fatalf("AllPatterns(3) visited %d, want 8", len(got))
	}
	// NumPatterns excludes the empty pattern: 2^n - 1.
	if NumPatterns(3) != 7 {
		t.Fatalf("NumPatterns(3) = %d, want 7", NumPatterns(3))
	}
	// Early stop.
	n := 0
	AllPatterns(3, func(Pattern) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

// Property: Benefits is a partial order — reflexive, antisymmetric,
// transitive.
func TestBenefitsIsPartialOrder(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p, q, r := Pattern(a), Pattern(b), Pattern(c)
		if !p.Benefits(p) {
			return false
		}
		if p.Benefits(q) && q.Benefits(p) && p != q {
			return false
		}
		if p.Benefits(q) && q.Benefits(r) && !p.Benefits(r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every parent has exactly one fewer attribute and benefits the
// child; the number of parents equals the child's level.
func TestParentsProperties(t *testing.T) {
	f := func(a uint16) bool {
		p := Pattern(a)
		parents := p.Parents(nil)
		if len(parents) != p.Count() {
			return false
		}
		for _, pa := range parents {
			if pa.Count() != p.Count()-1 || !pa.ProperBenefits(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Children within n attributes inverts Parents.
func TestChildrenInverseOfParents(t *testing.T) {
	const n = 6
	f := func(a uint8) bool {
		p := Pattern(a) & FullPattern(n)
		for _, c := range p.Children(n, nil) {
			found := false
			for _, back := range c.Parents(nil) {
				if back == p {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: String/Parse round-trips for any pattern width ≤ 8.
func TestStringParseProperty(t *testing.T) {
	f := func(a uint8) bool {
		p := Pattern(a)
		s := p.StringN(8)
		back, err := ParsePattern(s)
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
