package tuner

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/query"
)

func tunerParams() cost.Params {
	// Large states and cheap hashing: scan costs dominate, matching the
	// regime of the paper's discussion examples.
	return cost.Params{LambdaD: 100, LambdaR: 100, Ch: 0.001, Cc: 1, Window: 60}
}

// table2CDIAStats is the Table II workload as CDIA (random combination)
// sees it: <A,B,*> folded into <A,*,*>, everything else intact.
func table2CDIAStats() []cost.APStat {
	return []cost.APStat{
		{P: query.PatternOf(0), Freq: 0.08},       // <A,*,*> 4% + <A,B,*> 4%
		{P: query.PatternOf(1), Freq: 0.10},       // <*,B,*>
		{P: query.PatternOf(2), Freq: 0.10},       // <*,*,C>
		{P: query.PatternOf(0, 2), Freq: 0.16},    // <A,*,C>
		{P: query.PatternOf(1, 2), Freq: 0.10},    // <*,B,C>
		{P: query.PatternOf(0, 1, 2), Freq: 0.46}, // <A,B,C>
	}
}

// table2CSRIAStats is the same workload after CSRIA deleted the two 4%
// patterns below the threshold.
func table2CSRIAStats() []cost.APStat {
	return []cost.APStat{
		{P: query.PatternOf(1), Freq: 0.10},
		{P: query.PatternOf(2), Freq: 0.10},
		{P: query.PatternOf(0, 2), Freq: 0.16},
		{P: query.PatternOf(1, 2), Freq: 0.10},
		{P: query.PatternOf(0, 1, 2), Freq: 0.46},
	}
}

// TestTable2OptimalConfigurations pins the optimizer to the paper's
// Section IV-C2/IV-D2 discussion: with the CDIA statistics the true optimal
// 4-bit IC is {A:1,B:1,C:2}; with CSRIA's reduced statistics it is
// {B:1,C:3}.
func TestTable2OptimalConfigurations(t *testing.T) {
	opt := Options{RequireFullBudget: true}
	p := tunerParams()

	cdia, err := Exhaustive(3, 4, p, table2CDIAStats(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cdia.Equal(bitindex.NewConfig(1, 1, 2)) {
		t.Fatalf("CDIA stats optimum = %v, want IC[1,1,2]", cdia)
	}

	csria, err := Exhaustive(3, 4, p, table2CSRIAStats(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !csria.Equal(bitindex.NewConfig(0, 1, 3)) {
		t.Fatalf("CSRIA stats optimum = %v, want IC[0,1,3]", csria)
	}
}

func TestGreedyMatchesExhaustiveOnTable2(t *testing.T) {
	p := tunerParams()
	opt := Options{RequireFullBudget: true}
	g := Greedy(3, 4, p, table2CDIAStats(), opt)
	e, _ := Exhaustive(3, 4, p, table2CDIAStats(), opt)
	gcd := cost.CD(p, g, table2CDIAStats())
	ecd := cost.CD(p, e, table2CDIAStats())
	if gcd > ecd*1.05 {
		t.Fatalf("greedy CD %g more than 5%% worse than exhaustive %g (g=%v e=%v)", gcd, ecd, g, e)
	}
}

func TestGreedyStopsWhenBitsDontHelp(t *testing.T) {
	// Only pattern constrains attribute 0; expensive hashing makes bits on
	// attribute 1 strictly harmful, and deep bits on attribute 0 stop
	// paying once the scan term is tiny.
	p := cost.Params{LambdaD: 100, LambdaR: 1, Ch: 10, Cc: 0.01, Window: 10}
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg := Greedy(2, 20, p, stats, Options{})
	if cfg.Bits[1] != 0 {
		t.Fatalf("greedy wasted bits on an unconstrained attribute: %v", cfg)
	}
	if cfg.TotalBits() == 20 {
		t.Fatalf("greedy should stop early when marginal gain vanishes: %v", cfg)
	}
}

func TestExhaustiveRespectsCaps(t *testing.T) {
	p := tunerParams()
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg, err := Exhaustive(2, 6, p, stats, Options{MaxBitsPerAttr: []uint8{2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Bits[0] > 2 {
		t.Fatalf("cap violated: %v", cfg)
	}
}

func TestGreedyRespectsCaps(t *testing.T) {
	p := tunerParams()
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg := Greedy(2, 10, p, stats, Options{MaxBitsPerAttr: []uint8{3, 0}})
	if cfg.Bits[0] > 3 || cfg.Bits[1] != 0 {
		t.Fatalf("cap violated: %v", cfg)
	}
}

func TestExhaustiveRefusesHugeSpace(t *testing.T) {
	if _, err := Exhaustive(16, 64, tunerParams(), nil, Options{}); err == nil {
		t.Fatal("16 attrs x 64 bits should be refused")
	}
}

func TestExhaustiveFullBudget(t *testing.T) {
	p := tunerParams()
	stats := []cost.APStat{{P: query.PatternOf(0, 1), Freq: 1}}
	cfg, err := Exhaustive(2, 8, p, stats, Options{RequireFullBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TotalBits() != 8 {
		t.Fatalf("full budget not spent: %v", cfg)
	}
}

func TestControllerProposesOnlyWorthwhileMigrations(t *testing.T) {
	p := tunerParams()
	ctl := &Controller{Params: p, Budget: 4, MinGain: 0.05, UseExhaustive: true,
		Opt: Options{RequireFullBudget: true}}

	// Starting from the CSRIA-shaped config, CDIA stats justify moving.
	cur := bitindex.NewConfig(0, 1, 3)
	next, improve := ctl.Propose(cur, table2CDIAStats())
	if !improve {
		t.Fatal("controller should migrate to the true optimum")
	}
	if !next.Equal(bitindex.NewConfig(1, 1, 2)) {
		t.Fatalf("proposed %v", next)
	}

	// Already optimal: no migration.
	if _, improve := ctl.Propose(next, table2CDIAStats()); improve {
		t.Fatal("controller should not churn at the optimum")
	}

	// No stats: keep.
	if got, improve := ctl.Propose(cur, nil); improve || !got.Equal(cur) {
		t.Fatal("controller must keep current config without stats")
	}
}

func TestControllerHysteresis(t *testing.T) {
	p := tunerParams()
	// Huge MinGain: even a better config should be rejected.
	ctl := &Controller{Params: p, Budget: 4, MinGain: 0.99, UseExhaustive: true,
		Opt: Options{RequireFullBudget: true}}
	_, improve := ctl.Propose(bitindex.NewConfig(0, 1, 3), table2CDIAStats())
	if improve {
		t.Fatal("hysteresis should suppress marginal migrations")
	}
}

// Property: on random instances greedy never beats exhaustive, and stays
// within a modest factor of it (the scan terms are supermodular enough in
// practice; this is the A2 ablation's invariant).
func TestGreedyWithinBoundOfExhaustive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		p := cost.Params{LambdaD: 50 + float64(rng.IntN(200)), LambdaR: 10 + float64(rng.IntN(100)),
			Ch: 0.01 + rng.Float64(), Cc: 0.1 + rng.Float64(), Window: 10 + float64(rng.IntN(100))}
		numAttrs := 2 + rng.IntN(3)
		budget := 2 + rng.IntN(8)
		var stats []cost.APStat
		query.AllPatterns(numAttrs, func(ap query.Pattern) bool {
			if ap != 0 && rng.Float64() < 0.6 {
				stats = append(stats, cost.APStat{P: ap, Freq: rng.Float64()})
			}
			return true
		})
		if len(stats) == 0 {
			return true
		}
		g := Greedy(numAttrs, budget, p, stats, Options{})
		e, err := Exhaustive(numAttrs, budget, p, stats, Options{})
		if err != nil {
			return true
		}
		gcd := cost.CD(p, g, stats)
		ecd := cost.CD(p, e, stats)
		return gcd+1e-9 >= ecd && gcd <= ecd*1.25+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: exhaustive with RequireFullBudget spends exactly the budget
// whenever the caps allow it.
func TestExhaustiveBudgetProperty(t *testing.T) {
	f := func(b uint8) bool {
		budget := int(b%10) + 1
		p := tunerParams()
		stats := []cost.APStat{{P: query.PatternOf(0, 1, 2), Freq: 1}}
		cfg, err := Exhaustive(3, budget, p, stats, Options{RequireFullBudget: true})
		return err == nil && cfg.TotalBits() == budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
