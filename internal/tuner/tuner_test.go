package tuner

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/query"
)

func tunerParams() cost.Params {
	// Large states and cheap hashing: scan costs dominate, matching the
	// regime of the paper's discussion examples.
	return cost.Params{LambdaD: 100, LambdaR: 100, Ch: 0.001, Cc: 1, Window: 60}
}

// table2CDIAStats is the Table II workload as CDIA (random combination)
// sees it: <A,B,*> folded into <A,*,*>, everything else intact.
func table2CDIAStats() []cost.APStat {
	return []cost.APStat{
		{P: query.PatternOf(0), Freq: 0.08},       // <A,*,*> 4% + <A,B,*> 4%
		{P: query.PatternOf(1), Freq: 0.10},       // <*,B,*>
		{P: query.PatternOf(2), Freq: 0.10},       // <*,*,C>
		{P: query.PatternOf(0, 2), Freq: 0.16},    // <A,*,C>
		{P: query.PatternOf(1, 2), Freq: 0.10},    // <*,B,C>
		{P: query.PatternOf(0, 1, 2), Freq: 0.46}, // <A,B,C>
	}
}

// table2CSRIAStats is the same workload after CSRIA deleted the two 4%
// patterns below the threshold.
func table2CSRIAStats() []cost.APStat {
	return []cost.APStat{
		{P: query.PatternOf(1), Freq: 0.10},
		{P: query.PatternOf(2), Freq: 0.10},
		{P: query.PatternOf(0, 2), Freq: 0.16},
		{P: query.PatternOf(1, 2), Freq: 0.10},
		{P: query.PatternOf(0, 1, 2), Freq: 0.46},
	}
}

// TestTable2OptimalConfigurations pins the optimizer to the paper's
// Section IV-C2/IV-D2 discussion: with the CDIA statistics the true optimal
// 4-bit IC is {A:1,B:1,C:2}; with CSRIA's reduced statistics it is
// {B:1,C:3}.
func TestTable2OptimalConfigurations(t *testing.T) {
	opt := Options{RequireFullBudget: true}
	p := tunerParams()

	cdia, cdiaCD, err := Exhaustive(3, 4, p, table2CDIAStats(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cdia.Equal(bitindex.NewConfig(1, 1, 2)) {
		t.Fatalf("CDIA stats optimum = %v, want IC[1,1,2]", cdia)
	}
	if got := cost.CD(p, cdia, table2CDIAStats()); got != cdiaCD {
		t.Fatalf("Exhaustive score %g != CD of its config %g", cdiaCD, got)
	}

	csria, _, err := Exhaustive(3, 4, p, table2CSRIAStats(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !csria.Equal(bitindex.NewConfig(0, 1, 3)) {
		t.Fatalf("CSRIA stats optimum = %v, want IC[0,1,3]", csria)
	}
}

func TestGreedyMatchesExhaustiveOnTable2(t *testing.T) {
	p := tunerParams()
	opt := Options{RequireFullBudget: true}
	g, gcd := Greedy(3, 4, p, table2CDIAStats(), opt)
	e, ecd, _ := Exhaustive(3, 4, p, table2CDIAStats(), opt)
	if gcd > ecd*1.05 {
		t.Fatalf("greedy CD %g more than 5%% worse than exhaustive %g (g=%v e=%v)", gcd, ecd, g, e)
	}
}

func TestGreedyStopsWhenBitsDontHelp(t *testing.T) {
	// Only pattern constrains attribute 0; expensive hashing makes bits on
	// attribute 1 strictly harmful, and deep bits on attribute 0 stop
	// paying once the scan term is tiny.
	p := cost.Params{LambdaD: 100, LambdaR: 1, Ch: 10, Cc: 0.01, Window: 10}
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg, _ := Greedy(2, 20, p, stats, Options{})
	if cfg.Bits[1] != 0 {
		t.Fatalf("greedy wasted bits on an unconstrained attribute: %v", cfg)
	}
	if cfg.TotalBits() == 20 {
		t.Fatalf("greedy should stop early when marginal gain vanishes: %v", cfg)
	}
}

// TestGreedyForcedPickScore pins the RequireFullBudget forced-pick branch:
// when no single bit improves C_D, greedy still spends the budget on the
// least-bad attribute, and the returned score reports the true (worse than
// current) cost of that configuration instead of hiding it.
func TestGreedyForcedPickScore(t *testing.T) {
	// Expensive hashing: any indexed attribute costs more in maintenance
	// than its scan savings, so every bit is a forced pick.
	p := cost.Params{LambdaD: 100, LambdaR: 1, Ch: 10, Cc: 0.01, Window: 10}
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg, score := Greedy(2, 2, p, stats, Options{RequireFullBudget: true})
	if cfg.TotalBits() != 2 {
		t.Fatalf("full budget not spent under RequireFullBudget: %v", cfg)
	}
	if got := cost.CD(p, cfg, stats); got != score {
		t.Fatalf("returned score %g != CD of returned config %g", score, got)
	}
	empty := bitindex.Config{Bits: make([]uint8, 2)}
	if base := cost.CD(p, empty, stats); score <= base {
		t.Fatalf("forced pick should cost more than indexing nothing here (score %g, base %g) — regime lost, test needs a harsher cost table", score, base)
	}
}

func TestExhaustiveRespectsCaps(t *testing.T) {
	p := tunerParams()
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg, _, err := Exhaustive(2, 6, p, stats, Options{MaxBitsPerAttr: []uint8{2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Bits[0] > 2 {
		t.Fatalf("cap violated: %v", cfg)
	}
}

func TestGreedyRespectsCaps(t *testing.T) {
	p := tunerParams()
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg, _ := Greedy(2, 10, p, stats, Options{MaxBitsPerAttr: []uint8{3, 0}})
	if cfg.Bits[0] > 3 || cfg.Bits[1] != 0 {
		t.Fatalf("cap violated: %v", cfg)
	}
}

func TestExhaustiveRefusesHugeSpace(t *testing.T) {
	_, _, err := Exhaustive(16, 32, tunerParams(), nil, Options{})
	if !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("16 attrs x 32 bits should be refused with ErrSpaceTooLarge, got %v", err)
	}
}

// TestExhaustiveSpaceEstimateHonoursCaps: 16 attributes capped at 1 bit each
// is 2^16 allocations — tractable — but the uncapped estimate (33^16) used
// to refuse it.
func TestExhaustiveSpaceEstimateHonoursCaps(t *testing.T) {
	caps := make([]uint8, 16)
	for i := range caps {
		caps[i] = 1
	}
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	cfg, _, err := Exhaustive(16, 32, tunerParams(), stats, Options{MaxBitsPerAttr: caps})
	if err != nil {
		t.Fatalf("capped 16x1 space should be enumerable, got %v", err)
	}
	if cfg.Bits[0] != 1 {
		t.Fatalf("optimum should spend the one useful bit: %v", cfg)
	}
}

func TestExhaustiveRejectsInvalidBudget(t *testing.T) {
	if _, _, err := Exhaustive(3, bitindex.MaxTotalBits+1, tunerParams(), nil, Options{}); err == nil || errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("oversized budget must be a hard error, got %v", err)
	}
	if _, _, err := Exhaustive(3, -1, tunerParams(), nil, Options{}); err == nil {
		t.Fatal("negative budget must be a hard error")
	}
}

func TestExhaustiveFullBudget(t *testing.T) {
	p := tunerParams()
	stats := []cost.APStat{{P: query.PatternOf(0, 1), Freq: 1}}
	cfg, _, err := Exhaustive(2, 8, p, stats, Options{RequireFullBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TotalBits() != 8 {
		t.Fatalf("full budget not spent: %v", cfg)
	}
}

func TestControllerProposesOnlyWorthwhileMigrations(t *testing.T) {
	p := tunerParams()
	ctl := &Controller{Params: p, Budget: 4, MinGain: 0.05, UseExhaustive: true,
		Opt: Options{RequireFullBudget: true}}

	// Starting from the CSRIA-shaped config, CDIA stats justify moving.
	cur := bitindex.NewConfig(0, 1, 3)
	pr, err := ctl.Propose(cur, table2CDIAStats(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Migrate() {
		t.Fatal("controller should migrate to the true optimum")
	}
	if !pr.To.Equal(bitindex.NewConfig(1, 1, 2)) {
		t.Fatalf("proposed %v", pr.To)
	}

	// Already optimal: no migration.
	if pr2, _ := ctl.Propose(pr.To, table2CDIAStats(), 0); pr2.Migrate() {
		t.Fatal("controller should not churn at the optimum")
	}

	// No stats: keep.
	if pr3, _ := ctl.Propose(cur, nil, 0); pr3.Migrate() {
		t.Fatal("controller must keep current config without stats")
	}
}

func TestControllerHysteresis(t *testing.T) {
	p := tunerParams()
	// Huge MinGain: even a better config should be rejected.
	ctl := &Controller{Params: p, Budget: 4, MinGain: 0.99, UseExhaustive: true,
		Opt: Options{RequireFullBudget: true}}
	pr, err := ctl.Propose(bitindex.NewConfig(0, 1, 3), table2CDIAStats(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Migrate() {
		t.Fatal("hysteresis should suppress marginal migrations")
	}
	if pr.Decision != DecideKeep {
		t.Fatalf("decision = %v, want keep", pr.Decision)
	}
}

// TestProposePropagatesInvalidBudget is the error-swallowing regression: a
// budget past the bucket id used to fall back silently to Greedy (which
// would happily allocate it); now it surfaces.
func TestProposePropagatesInvalidBudget(t *testing.T) {
	ctl := &Controller{Params: tunerParams(), Budget: bitindex.MaxTotalBits + 8, UseExhaustive: true}
	if _, err := ctl.Propose(bitindex.NewConfig(1, 1, 2), table2CDIAStats(), 0); err == nil {
		t.Fatal("invalid budget must propagate out of Propose")
	}
}

// TestProposeFallsBackOnHugeSpace: the one Exhaustive failure greedy may
// absorb is ErrSpaceTooLarge.
func TestProposeFallsBackOnHugeSpace(t *testing.T) {
	stats := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	ctl := &Controller{Params: tunerParams(), Budget: 24, UseExhaustive: true}
	cur := bitindex.Config{Bits: make([]uint8, 16)}
	pr, err := ctl.Propose(cur, stats, 0)
	if err != nil {
		t.Fatalf("oversized space should degrade to greedy, got %v", err)
	}
	if !pr.Migrate() || pr.To.BitsFor(query.PatternOf(0)) == 0 {
		t.Fatalf("greedy fallback should still index the hot attribute: %+v", pr)
	}
}

// TestControllerCooldownHolds: immediately after a migration, a new
// worthwhile candidate is held for Cooldown passes.
func TestControllerCooldownHolds(t *testing.T) {
	p := tunerParams()
	statsA := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	statsB := []cost.APStat{{P: query.PatternOf(1), Freq: 1}}
	ctl := &Controller{Params: p, Budget: 4, UseExhaustive: true, Cooldown: 2}

	pr, err := ctl.Propose(bitindex.NewConfig(0, 0, 0), statsA, 0)
	if err != nil || !pr.Migrate() {
		t.Fatalf("first adoption should migrate: %+v err=%v", pr, err)
	}
	pr2, _ := ctl.Propose(pr.To, statsB, 0)
	if pr2.Decision != DecideCooldown {
		t.Fatalf("pass right after a migration should hold on cooldown, got %v", pr2.Decision)
	}
	sum := ctl.Summary()
	if sum.Migrations != 1 || sum.CooldownHolds != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestControllerThrashProtection is the oscillating-stats regression: the
// legacy policy flip-flops every window, the v2 controller adopts once and
// then holds (cooldown structurally blocks back-to-back moves, the
// flip-flop guard blocks the A->B->A return, and drift-shrunken horizons
// make chasing the oscillation uneconomical).
func TestControllerThrashProtection(t *testing.T) {
	// Probe-sparse regime: searches are rare relative to the stored state,
	// so relocating 8000 tuples to chase a mix that flips every window
	// costs more than the shrunken horizon can recoup. The first adoption
	// (from no index, before any drift is observed) still goes through.
	p := cost.Params{LambdaD: 100, LambdaR: 0.1, Ch: 0.001, Cc: 1, Window: 60}
	statsA := []cost.APStat{{P: query.PatternOf(0), Freq: 0.9}, {P: query.PatternOf(1), Freq: 0.1}}
	statsB := []cost.APStat{{P: query.PatternOf(1), Freq: 0.9}, {P: query.PatternOf(0), Freq: 0.1}}
	oscillate := func(ctl *Controller, passes int) int {
		migrations := 0
		cur := bitindex.NewConfig(0, 0)
		for i := 0; i < passes; i++ {
			stats := statsA
			if i%2 == 1 {
				stats = statsB
			}
			pr, err := ctl.Propose(cur, stats, 8000)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Migrate() {
				migrations++
				cur = pr.To
			}
		}
		return migrations
	}

	legacy := &Controller{Params: p, Budget: 4, MinGain: 0.02, UseExhaustive: true}
	v2 := &Controller{Params: p, Budget: 4, MinGain: 0.02, UseExhaustive: true,
		Horizon: 40, DriftSense: 4, Cooldown: 1, DrainRate: 64}

	const passes = 12
	lm := oscillate(legacy, passes)
	vm := oscillate(v2, passes)
	if lm < 2 {
		t.Fatalf("legacy controller should thrash on an oscillating mix, migrated %d times", lm)
	}
	if vm > 1 {
		t.Fatalf("v2 controller should adopt at most once under oscillation, migrated %d times", vm)
	}
	sum := v2.Summary()
	if sum.Holds() == 0 {
		t.Fatalf("v2 thrash protection never engaged: %+v", sum)
	}
}

// TestControllerUneconomicalMigration: a modest gain on a huge state is
// refused because relocation cost dwarfs what the horizon can amortize.
func TestControllerUneconomicalMigration(t *testing.T) {
	p := tunerParams()
	ctl := &Controller{Params: p, Budget: 4, MinGain: 0.01, UseExhaustive: true,
		Opt: Options{RequireFullBudget: true}, Horizon: 1e-3}
	pr, err := ctl.Propose(bitindex.NewConfig(0, 1, 3), table2CDIAStats(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Decision != DecideUneconomical {
		t.Fatalf("decision = %v, want uneconomical (migCost %.0f, gain %.2f, horizon %g)",
			pr.Decision, pr.MigCost, pr.Gain, pr.Horizon)
	}
	if pr.MigCost <= 0 {
		t.Fatal("migration cost should have been priced")
	}
}

// TestRecordDrainCalibratesAndAudits: realized drain work lands on the
// migration's ledger entry and recalibrates the per-tuple prior.
func TestRecordDrainCalibrates(t *testing.T) {
	p := tunerParams()
	ctl := &Controller{Params: p, Budget: 4, UseExhaustive: true,
		Horizon: 1e9, Cooldown: 1, DrainRate: 64}
	statsA := []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
	pr, err := ctl.Propose(bitindex.NewConfig(0, 0, 0), statsA, 100)
	if err != nil || !pr.Migrate() {
		t.Fatalf("expected migration: %+v err=%v", pr, err)
	}
	ctl.RecordDrain(60, 120, false)
	ctl.RecordDrain(40, 80, true)
	sum := ctl.Summary()
	if sum.Completed != 1 || sum.RealizedTuples != 100 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.PerTupleCost <= 0 {
		t.Fatal("completed drain should calibrate the per-tuple cost")
	}
	led := ctl.Ledger()
	last := led[len(led)-1]
	if !last.Completed || last.RealizedTuples != 100 || last.RealizedHashes != 200 || last.RealizedCost <= 0 {
		t.Fatalf("ledger entry missing realized drain: %+v", last)
	}
	if sum.PredictedMigCost <= 0 || sum.RealizedMigCost <= 0 {
		t.Fatalf("predicted-vs-realized pair incomplete: %+v", sum)
	}
}

// TestRecordAbort: an aborted drain is accounted without poisoning the
// calibration.
func TestRecordAbort(t *testing.T) {
	ctl := &Controller{Params: tunerParams(), Budget: 4, UseExhaustive: true, Horizon: 1e9}
	pr, err := ctl.Propose(bitindex.NewConfig(0, 0), []cost.APStat{{P: query.PatternOf(0), Freq: 1}}, 10)
	if err != nil || !pr.Migrate() {
		t.Fatalf("expected migration: %+v err=%v", pr, err)
	}
	ctl.RecordDrain(5, 10, false)
	ctl.RecordAbort()
	sum := ctl.Summary()
	if sum.Aborted != 1 || sum.Completed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.PerTupleCost != 0 {
		t.Fatal("aborted drain must not calibrate the per-tuple cost")
	}
}

// Property: on random instances greedy never beats exhaustive, and stays
// within a modest factor of it across random caps, budgets and
// RequireFullBudget (the scan terms are supermodular enough in practice;
// this is the A2 ablation's invariant).
func TestGreedyWithinBoundOfExhaustive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		p := cost.Params{LambdaD: 50 + float64(rng.IntN(200)), LambdaR: 10 + float64(rng.IntN(100)),
			Ch: 0.01 + rng.Float64(), Cc: 0.1 + rng.Float64(), Window: 10 + float64(rng.IntN(100))}
		numAttrs := 2 + rng.IntN(3)
		budget := 2 + rng.IntN(8)
		opt := Options{RequireFullBudget: rng.IntN(2) == 0}
		if rng.IntN(2) == 0 {
			// Random per-attribute caps; keep the instance satisfiable
			// under RequireFullBudget by capping at the budget floor.
			caps := make([]uint8, numAttrs)
			total := 0
			for i := range caps {
				caps[i] = uint8(1 + rng.IntN(budget))
				total += int(caps[i])
			}
			if total >= budget {
				opt.MaxBitsPerAttr = caps
			}
		}
		var stats []cost.APStat
		query.AllPatterns(numAttrs, func(ap query.Pattern) bool {
			if ap != 0 && rng.Float64() < 0.6 {
				stats = append(stats, cost.APStat{P: ap, Freq: rng.Float64()})
			}
			return true
		})
		if len(stats) == 0 {
			return true
		}
		g, gcd := Greedy(numAttrs, budget, p, stats, opt)
		e, ecd, err := Exhaustive(numAttrs, budget, p, stats, opt)
		if err != nil {
			return true
		}
		if cost.CD(p, g, stats) != gcd || cost.CD(p, e, stats) != ecd {
			return false // returned scores must match the returned configs
		}
		return gcd+1e-9 >= ecd && gcd <= ecd*1.25+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: exhaustive with RequireFullBudget spends exactly the budget
// whenever the caps allow it.
func TestExhaustiveBudgetProperty(t *testing.T) {
	f := func(b uint8) bool {
		budget := int(b%10) + 1
		p := tunerParams()
		stats := []cost.APStat{{P: query.PatternOf(0, 1, 2), Freq: 1}}
		cfg, _, err := Exhaustive(3, budget, p, stats, Options{RequireFullBudget: true})
		return err == nil && cfg.TotalBits() == budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
