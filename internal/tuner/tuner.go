// Package tuner selects index configurations: given assessed access-pattern
// frequencies it searches the space of per-attribute bit allocations for the
// one minimizing the paper's C_D cost (Equation 1), and decides when an
// improvement is worth a migration.
//
// The Controller is the v2 ("migration-cost-aware") retuning policy. Beyond
// the v1 hysteresis threshold (MinGain), it prices the migration itself —
// relocation of the whole state plus the dual-directory window an
// incremental drain keeps open — and migrates only when the modelled C_D
// gain, accumulated over an amortization horizon, pays for the move. The
// horizon shrinks as the observed access-pattern mix churns (a drifting
// workload will not keep any configuration long enough to amortize an
// expensive migration), a cooldown makes back-to-back retunes structurally
// impossible, and every decision lands in a what-if ledger recording
// predicted against realized migration cost so the model stays auditable.
package tuner

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"amri/internal/bitindex"
	"amri/internal/cost"
)

// Options constrain the allocation search.
type Options struct {
	// MaxBitsPerAttr optionally caps the bits each attribute may receive
	// (e.g. log2 of the attribute's domain cardinality — bits beyond that
	// cannot spread tuples further). nil means no per-attribute cap.
	MaxBitsPerAttr []uint8
	// RequireFullBudget forces allocations to spend every bit even when
	// unused bits would be cheaper (some deployments size the directory
	// statically). Default false: allocations may leave bits unspent.
	RequireFullBudget bool
}

func (o Options) capFor(attr int) int {
	if o.MaxBitsPerAttr == nil {
		return bitindex.MaxTotalBits
	}
	return int(o.MaxBitsPerAttr[attr])
}

// Greedy allocates bits one at a time, each time granting the attribute
// whose extra bit lowers C_D the most, stopping early when no single bit
// improves the cost (unless RequireFullBudget). Each bit granted to an
// attribute halves the scan term of every pattern constraining it, so the
// marginal gains are diminishing and greedy tracks the optimum closely; the
// exhaustive search below exists to verify exactly that. The returned score
// is the chosen configuration's C_D — callers must not recompute it.
//
// Under RequireFullBudget the forced pick (no single bit improves C_D but
// the budget is not yet spent) takes the least-bad attribute, which can
// leave the final score above the unconstrained optimum — the score return
// is what lets callers see that instead of assuming monotone improvement.
func Greedy(numAttrs, budget int, p cost.Params, stats []cost.APStat, opt Options) (bitindex.Config, float64) {
	cfg := bitindex.Config{Bits: make([]uint8, numAttrs)}
	current := cost.CD(p, cfg, stats)
	for spent := 0; spent < budget; spent++ {
		bestAttr := -1
		bestCD := current
		for a := 0; a < numAttrs; a++ {
			if int(cfg.Bits[a]) >= opt.capFor(a) || cfg.TotalBits() >= bitindex.MaxTotalBits {
				continue
			}
			cfg.Bits[a]++
			cd := cost.CD(p, cfg, stats)
			cfg.Bits[a]--
			if cd < bestCD || (opt.RequireFullBudget && bestAttr == -1) {
				bestCD = cd
				bestAttr = a
			}
		}
		if bestAttr == -1 {
			break
		}
		cfg.Bits[bestAttr]++
		current = bestCD
	}
	return cfg, current
}

// maxExhaustiveSpace bounds the number of allocations Exhaustive will
// enumerate before refusing.
const maxExhaustiveSpace = 5_000_000

// ErrSpaceTooLarge reports that Exhaustive refused a combinatorially large
// search space. It is the only Exhaustive error greedy can stand in for:
// every other error (budget beyond the bucket id, constraints that no
// allocation satisfies) describes a misconfiguration greedy would inherit,
// and must propagate instead of being silently absorbed.
var ErrSpaceTooLarge = errors.New("tuner: exhaustive space too large")

// Exhaustive enumerates every allocation of at most budget bits across the
// attributes (exactly budget when RequireFullBudget) and returns the C_D
// minimizer with its score; ties break toward the lexicographically smallest
// bit vector so results are deterministic. It refuses combinatorially large
// spaces with ErrSpaceTooLarge — use Greedy there. The space estimate
// honours the per-attribute caps: an attribute capped at c contributes
// min(budget, c)+1 choices, not budget+1, so tightly capped searches over
// many attributes stay eligible.
func Exhaustive(numAttrs, budget int, p cost.Params, stats []cost.APStat, opt Options) (bitindex.Config, float64, error) {
	if budget > bitindex.MaxTotalBits {
		// Unlike Greedy, the recursive walk would happily allocate every
		// budgeted bit, producing configurations no uint64 bucket id can
		// address; refuse up front (amrivet:bitbudget surfaced this).
		return bitindex.Config{}, 0, fmt.Errorf("tuner: budget %d exceeds the %d-bit bucket id", budget, bitindex.MaxTotalBits)
	}
	if budget < 0 {
		return bitindex.Config{}, 0, fmt.Errorf("tuner: negative budget %d", budget)
	}
	space := 1.0
	for i := 0; i < numAttrs; i++ {
		space *= float64(min(budget, opt.capFor(i)) + 1)
		if space > maxExhaustiveSpace {
			return bitindex.Config{}, 0, fmt.Errorf("%w: %d attrs x %d bits", ErrSpaceTooLarge, numAttrs, budget)
		}
	}

	best := bitindex.Config{Bits: make([]uint8, numAttrs)}
	bestCD := cost.CD(p, best, stats)
	haveBest := !opt.RequireFullBudget || budget == 0

	cur := make([]uint8, numAttrs)
	var walk func(attr, remaining int)
	walk = func(attr, remaining int) {
		if attr == numAttrs {
			if opt.RequireFullBudget && remaining != 0 {
				return
			}
			cfg := bitindex.Config{Bits: cur}
			cd := cost.CD(p, cfg, stats)
			if !haveBest || cd < bestCD-1e-12 {
				bestCD = cd
				best = cfg.Clone()
				haveBest = true
			}
			return
		}
		limit := min(remaining, opt.capFor(attr))
		for b := 0; b <= limit; b++ {
			cur[attr] = uint8(b)
			walk(attr+1, remaining-b)
		}
		cur[attr] = 0
	}
	walk(0, budget)
	if !haveBest {
		return bitindex.Config{}, 0, fmt.Errorf("tuner: no allocation satisfies the constraints")
	}
	return best, bestCD, nil
}

// Decision classifies what the controller did with one proposal.
type Decision uint8

const (
	// DecideKeep: the optimizer's pick is no better than the current
	// configuration, or the improvement is below the MinGain hysteresis.
	DecideKeep Decision = iota
	// DecideMigrate: the candidate clears every bar; migrate to it.
	DecideMigrate
	// DecideCooldown: a worthwhile candidate exists but the last migration
	// is too recent — the cooldown window holds the configuration.
	DecideCooldown
	// DecideFlipFlop: the candidate is exactly the configuration the last
	// migration moved away from; returning this soon would thrash.
	DecideFlipFlop
	// DecideUneconomical: the modelled C_D gain over the amortization
	// horizon does not pay for the migration itself.
	DecideUneconomical
)

// String renders the decision for ledger output.
func (d Decision) String() string {
	switch d {
	case DecideKeep:
		return "keep"
	case DecideMigrate:
		return "migrate"
	case DecideCooldown:
		return "cooldown"
	case DecideFlipFlop:
		return "flip-flop"
	case DecideUneconomical:
		return "uneconomical"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// Proposal is one what-if ledger entry: what the optimizer proposed, how the
// controller priced it, what it decided, and — for migrations — what the
// drain actually cost once it ran.
type Proposal struct {
	// Pass is the 1-based Propose call this entry belongs to.
	Pass int
	// From and To are the current configuration and the optimizer's pick.
	From, To bitindex.Config
	// CurCD and NextCD are the modelled per-time-unit costs of From and To.
	CurCD, NextCD float64
	// Gain is CurCD − NextCD when positive (zero otherwise).
	Gain float64
	// MigCost is the predicted one-time migration cost; zero when the
	// controller is not pricing migrations (legacy policy) or nothing
	// needed pricing.
	MigCost float64
	// Horizon is the drift-adjusted amortization horizon the economics
	// used, in the cost model's time units.
	Horizon float64
	// Drift is the EWMA access-pattern churn rate at decision time
	// (0 = stable mix, 1 = complete turnover each window).
	Drift float64
	// Decision is what the controller did.
	Decision Decision
	// RealizedTuples/RealizedHashes/RealizedCost accumulate the observed
	// drain work for an applied migration; Completed and Aborted record how
	// the drain ended.
	RealizedTuples uint64
	RealizedHashes uint64
	RealizedCost   float64
	Completed      bool
	Aborted        bool
}

// Migrate reports whether the controller decided to apply the proposal.
func (pr Proposal) Migrate() bool { return pr.Decision == DecideMigrate }

// Summary aggregates a controller's ledger into the counters metrics and
// the pipeline expose.
type Summary struct {
	// Passes counts Propose calls; the decision counters partition them.
	Passes        int
	Keeps         int
	Migrations    int
	CooldownHolds int
	FlipFlopHolds int
	Uneconomical  int
	// PredictedMigCost sums MigCost over applied migrations;
	// RealizedMigCost and RealizedTuples sum the observed drain work, so
	// predicted-vs-realized is auditable in aggregate too.
	PredictedMigCost float64
	RealizedMigCost  float64
	RealizedTuples   uint64
	// Completed/Aborted count how applied migrations' drains ended.
	Completed int
	Aborted   int
	// Drift is the current EWMA churn rate; PerTupleCost the calibrated
	// per-tuple drain cost (0 until a drain completes). Add takes the max
	// of each, so an aggregate reports its most drifty / most expensive
	// member.
	Drift        float64
	PerTupleCost float64
}

// Add folds another summary into s (counters sum, rates take the max).
func (s *Summary) Add(o Summary) {
	s.Passes += o.Passes
	s.Keeps += o.Keeps
	s.Migrations += o.Migrations
	s.CooldownHolds += o.CooldownHolds
	s.FlipFlopHolds += o.FlipFlopHolds
	s.Uneconomical += o.Uneconomical
	s.PredictedMigCost += o.PredictedMigCost
	s.RealizedMigCost += o.RealizedMigCost
	s.RealizedTuples += o.RealizedTuples
	s.Completed += o.Completed
	s.Aborted += o.Aborted
	s.Drift = max(s.Drift, o.Drift)
	s.PerTupleCost = max(s.PerTupleCost, o.PerTupleCost)
}

// Holds counts the passes where a worthwhile candidate existed but the
// thrash protection held the configuration.
func (s Summary) Holds() int { return s.CooldownHolds + s.FlipFlopHolds + s.Uneconomical }

// defaultLedgerCap bounds the ledger when the owner does not choose a cap.
const defaultLedgerCap = 64

// driftAlpha is the EWMA weight of the newest inter-window churn sample.
const driftAlpha = 0.5

// perTupleAlpha is the EWMA weight of the newest completed drain's observed
// per-tuple cost.
const perTupleAlpha = 0.5

// Controller wraps the optimizer with the retuning policy. The exported
// fields configure it; the zero value of every v2 field (Horizon, Cooldown,
// DriftSense, MigrateStepTuples) reproduces the legacy v1 policy exactly —
// MinGain hysteresis only — which is what the thrash benchmark compares
// against. A Controller must be long-lived to be useful: cooldown, drift and
// calibration state accumulate across Propose calls. It is safe for
// concurrent use; the exported fields must be set before first use and then
// only changed through SetParams/SetBudget.
type Controller struct {
	// Params is the cost model the controller ranks configurations by.
	Params cost.Params
	// Budget is the total bit budget per state.
	Budget int
	// MinGain is the fractional C_D improvement required to migrate,
	// e.g. 0.05 = retune only for a ≥5% modelled win.
	MinGain float64
	// Opt constrains the allocation search.
	Opt Options
	// UseExhaustive selects the exact optimizer when the space allows;
	// greedy otherwise (and as fallback for oversized spaces).
	UseExhaustive bool

	// Horizon is the amortization horizon in the cost model's time units:
	// a migration is applied only when (CurCD−NextCD)·horizon exceeds the
	// predicted migration cost, where horizon = Horizon/(1+DriftSense·drift)
	// shrinks as the pattern mix churns. 0 disables migration pricing.
	Horizon float64
	// DriftSense scales how strongly observed churn shrinks the horizon.
	DriftSense float64
	// Cooldown is the minimum number of Propose passes between applied
	// migrations; within it worthwhile candidates are held (DecideCooldown),
	// and returning to the configuration the last migration left is held
	// for twice as long (DecideFlipFlop). 0 disables both guards.
	Cooldown int
	// DrainRate is the incremental drain's relocation rate in tuples per
	// cost-model time unit (MigrateStepTuples·λ_d on the concurrent index,
	// MigrateStepTuples per tick in the simulator), which sets the
	// dual-directory window the migration price includes; <= 0 models a
	// stop-the-world migration.
	DrainRate float64
	// LedgerCap bounds the retained ledger (default 64; oldest dropped).
	LedgerCap int

	mu          sync.Mutex
	pass        int
	lastMigPass int
	prevCfg     bitindex.Config // configuration the last migration left
	haveMig     bool
	lastFreq    []cost.APStat // previous normalized snapshot, sorted by P
	drift       float64
	perTuple    float64 // EWMA observed per-tuple drain cost
	pendingPass int     // Pass of the in-flight migration's entry; 0 = none
	pendTuples  uint64
	pendCost    float64
	ledger      []Proposal
	sum         Summary
}

// SetParams swaps the cost model (owners recalibrate it per pass from live
// rates). Safe against concurrent Propose/RecordDrain.
func (c *Controller) SetParams(p cost.Params) {
	c.mu.Lock()
	c.Params = p
	c.mu.Unlock()
}

// SetBudget swaps the bit budget. Safe against concurrent use.
func (c *Controller) SetBudget(b int) {
	c.mu.Lock()
	c.Budget = b
	c.mu.Unlock()
}

// SetHorizon swaps the amortization horizon. Owners whose assessment
// cadence is counted in requests rather than model time recompute it per
// pass from the calibrated request rate. Safe against concurrent use.
func (c *Controller) SetHorizon(h float64) {
	c.mu.Lock()
	c.Horizon = h
	c.mu.Unlock()
}

// Propose runs one retuning pass: observe the statistics' churn, search for
// the C_D minimizer, and decide whether reaching it is worth the move for a
// state currently holding stateSize tuples. The returned proposal is the
// ledger entry it appended; callers act on pr.Migrate() and pr.To. The error
// is non-nil only for optimizer misconfigurations (budget beyond the bucket
// id, unsatisfiable constraints) — those propagate instead of silently
// degrading to greedy, which previously masked them.
func (c *Controller) Propose(current bitindex.Config, stats []cost.APStat, stateSize int) (Proposal, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pass++
	drift := c.observeDriftLocked(stats)
	pr := Proposal{
		Pass:     c.pass,
		From:     current.Clone(),
		To:       current.Clone(),
		Drift:    drift,
		Decision: DecideKeep,
	}
	if len(stats) == 0 {
		c.recordLocked(pr)
		return pr, nil
	}

	next, nextCD, err := c.searchLocked(current.NumAttrs(), stats)
	if err != nil {
		return Proposal{}, err
	}
	curCD := cost.CD(c.Params, current, stats)
	pr.To, pr.CurCD, pr.NextCD = next, curCD, nextCD

	switch {
	case next.Equal(current) || nextCD >= curCD*(1-c.MinGain):
		// No candidate, or below the hysteresis bar.
	default:
		pr.Gain = curCD - nextCD
		pr.Decision = c.decideLocked(&pr, current, next, stateSize)
	}
	if pr.Decision == DecideMigrate {
		c.lastMigPass = c.pass
		c.prevCfg = current.Clone()
		c.haveMig = true
		c.pendingPass = pr.Pass
		c.pendTuples, c.pendCost = 0, 0
		c.sum.PredictedMigCost += pr.MigCost
	}
	c.recordLocked(pr)
	return pr, nil
}

// decideLocked applies the v2 guards to a candidate that already cleared
// MinGain: structural thrash protection first (cooldown, flip-flop), then
// the migration economics.
func (c *Controller) decideLocked(pr *Proposal, current, next bitindex.Config, stateSize int) Decision {
	if c.Horizon > 0 {
		pr.Horizon = c.Horizon / (1 + c.DriftSense*c.drift)
		pr.MigCost = cost.Migration(c.Params, current, next, stateSize, c.DrainRate, c.perTuple)
	}
	if c.Cooldown > 0 && c.haveMig {
		since := c.pass - c.lastMigPass
		if since <= c.Cooldown {
			return DecideCooldown
		}
		if next.Equal(c.prevCfg) && since <= 2*c.Cooldown {
			return DecideFlipFlop
		}
	}
	if c.Horizon > 0 && pr.Gain*pr.Horizon <= pr.MigCost {
		return DecideUneconomical
	}
	return DecideMigrate
}

// searchLocked picks the optimizer. Exhaustive errors fall back to greedy
// only for the one condition greedy genuinely covers — an oversized search
// space; misconfiguration errors propagate.
func (c *Controller) searchLocked(numAttrs int, stats []cost.APStat) (bitindex.Config, float64, error) {
	if c.UseExhaustive {
		cfg, cd, err := Exhaustive(numAttrs, c.Budget, c.Params, stats, c.Opt)
		if err == nil {
			return cfg, cd, nil
		}
		if !errors.Is(err, ErrSpaceTooLarge) {
			return bitindex.Config{}, 0, err
		}
	}
	cfg, cd := Greedy(numAttrs, c.Budget, c.Params, stats, c.Opt)
	return cfg, cd, nil
}

// observeDriftLocked folds the new statistics snapshot into the churn EWMA:
// the sample is half the L1 distance between consecutive normalized
// frequency vectors (0 = identical mix, 1 = complete turnover). Snapshots
// are compared in ascending pattern order — a merge walk over sorted
// copies — so the float accumulation order is deterministic regardless of
// how the assessor ordered its results.
func (c *Controller) observeDriftLocked(stats []cost.APStat) float64 {
	cur := normalizeSorted(stats)
	if cur == nil {
		return c.drift
	}
	if c.lastFreq != nil {
		var d float64
		i, j := 0, 0
		for i < len(cur) || j < len(c.lastFreq) {
			switch {
			case j >= len(c.lastFreq) || (i < len(cur) && cur[i].P < c.lastFreq[j].P):
				d += cur[i].Freq
				i++
			case i >= len(cur) || c.lastFreq[j].P < cur[i].P:
				d += c.lastFreq[j].Freq
				j++
			default:
				diff := cur[i].Freq - c.lastFreq[j].Freq
				if diff < 0 {
					diff = -diff
				}
				d += diff
				i++
				j++
			}
		}
		c.drift = (1-driftAlpha)*c.drift + driftAlpha*d/2
	}
	c.lastFreq = cur
	return c.drift
}

// normalizeSorted returns a copy of the stats with frequencies scaled to
// sum to 1, sorted by pattern, or nil when there is no mass to normalize.
func normalizeSorted(stats []cost.APStat) []cost.APStat {
	var total float64
	for _, s := range stats {
		total += s.Freq
	}
	if total <= 0 {
		return nil
	}
	out := make([]cost.APStat, len(stats))
	copy(out, stats)
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	for i := range out {
		out[i].Freq /= total
	}
	return out
}

// recordLocked appends the entry to the bounded ledger and updates the
// running summary.
func (c *Controller) recordLocked(pr Proposal) {
	capLimit := c.LedgerCap
	if capLimit <= 0 {
		capLimit = defaultLedgerCap
	}
	if len(c.ledger) >= capLimit {
		drop := len(c.ledger) - capLimit + 1
		c.ledger = append(c.ledger[:0], c.ledger[drop:]...)
	}
	c.ledger = append(c.ledger, pr)
	c.sum.Passes++
	switch pr.Decision {
	case DecideKeep:
		c.sum.Keeps++
	case DecideMigrate:
		c.sum.Migrations++
	case DecideCooldown:
		c.sum.CooldownHolds++
	case DecideFlipFlop:
		c.sum.FlipFlopHolds++
	case DecideUneconomical:
		c.sum.Uneconomical++
	}
	c.sum.Drift = c.drift
	c.sum.PerTupleCost = c.perTuple
}

// RecordDrain feeds the observed drain work of the in-flight migration back
// into the controller: tuples relocated and hashes computed by one
// MigrateStep (or by a whole stop-the-world Migrate), and whether the drain
// just finished. The realized cost accumulates on the migration's ledger
// entry, and each completed drain recalibrates the per-tuple cost the next
// migration price uses — the model learns from what migrations actually
// cost, not only from priors. Safe for concurrent use with Propose.
func (c *Controller) RecordDrain(tuples, hashes uint64, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingPass == 0 {
		return
	}
	dc := float64(hashes)*c.Params.Ch + float64(tuples)*c.Params.Cc
	c.pendTuples += tuples
	c.pendCost += dc
	c.sum.RealizedMigCost += dc
	c.sum.RealizedTuples += tuples
	if e := c.findLocked(c.pendingPass); e != nil {
		e.RealizedTuples += tuples
		e.RealizedHashes += hashes
		e.RealizedCost += dc
		if done {
			e.Completed = true
		}
	}
	if done {
		c.sum.Completed++
		c.sum.PerTupleCost = c.perTuple
		if c.pendTuples > 0 {
			obs := c.pendCost / float64(c.pendTuples)
			if c.perTuple == 0 {
				c.perTuple = obs
			} else {
				c.perTuple = (1-perTupleAlpha)*c.perTuple + perTupleAlpha*obs
			}
			c.sum.PerTupleCost = c.perTuple
		}
		c.pendingPass = 0
		c.pendTuples, c.pendCost = 0, 0
	}
}

// RecordAbort marks the in-flight migration's drain as aborted (e.g. the
// owner rolled the migration back under load) without recalibrating the
// per-tuple cost from its partial work.
func (c *Controller) RecordAbort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingPass == 0 {
		return
	}
	if e := c.findLocked(c.pendingPass); e != nil {
		e.Aborted = true
	}
	c.sum.Aborted++
	c.pendingPass = 0
	c.pendTuples, c.pendCost = 0, 0
}

// findLocked returns the retained ledger entry for the pass, or nil when it
// rotated out.
func (c *Controller) findLocked(pass int) *Proposal {
	for i := len(c.ledger) - 1; i >= 0; i-- {
		if c.ledger[i].Pass == pass {
			return &c.ledger[i]
		}
	}
	return nil
}

// Ledger returns a copy of the retained what-if entries, oldest first.
func (c *Controller) Ledger() []Proposal {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Proposal, len(c.ledger))
	copy(out, c.ledger)
	return out
}

// Summary returns the running decision counters.
func (c *Controller) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}
