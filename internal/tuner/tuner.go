// Package tuner selects index configurations: given assessed access-pattern
// frequencies it searches the space of per-attribute bit allocations for the
// one minimizing the paper's C_D cost (Equation 1), and decides when an
// improvement is worth a migration.
package tuner

import (
	"fmt"

	"amri/internal/bitindex"
	"amri/internal/cost"
)

// Options constrain the allocation search.
type Options struct {
	// MaxBitsPerAttr optionally caps the bits each attribute may receive
	// (e.g. log2 of the attribute's domain cardinality — bits beyond that
	// cannot spread tuples further). nil means no per-attribute cap.
	MaxBitsPerAttr []uint8
	// RequireFullBudget forces allocations to spend every bit even when
	// unused bits would be cheaper (some deployments size the directory
	// statically). Default false: allocations may leave bits unspent.
	RequireFullBudget bool
}

func (o Options) capFor(attr int) int {
	if o.MaxBitsPerAttr == nil {
		return bitindex.MaxTotalBits
	}
	return int(o.MaxBitsPerAttr[attr])
}

// Greedy allocates bits one at a time, each time granting the attribute
// whose extra bit lowers C_D the most, stopping early when no single bit
// improves the cost (unless RequireFullBudget). Each bit granted to an
// attribute halves the scan term of every pattern constraining it, so the
// marginal gains are diminishing and greedy tracks the optimum closely; the
// exhaustive search below exists to verify exactly that.
func Greedy(numAttrs, budget int, p cost.Params, stats []cost.APStat, opt Options) bitindex.Config {
	cfg := bitindex.Config{Bits: make([]uint8, numAttrs)}
	current := cost.CD(p, cfg, stats)
	for spent := 0; spent < budget; spent++ {
		bestAttr := -1
		bestCD := current
		for a := 0; a < numAttrs; a++ {
			if int(cfg.Bits[a]) >= opt.capFor(a) || cfg.TotalBits() >= bitindex.MaxTotalBits {
				continue
			}
			cfg.Bits[a]++
			cd := cost.CD(p, cfg, stats)
			cfg.Bits[a]--
			if cd < bestCD || (opt.RequireFullBudget && bestAttr == -1) {
				bestCD = cd
				bestAttr = a
			}
		}
		if bestAttr == -1 {
			break
		}
		cfg.Bits[bestAttr]++
		current = bestCD
	}
	return cfg
}

// maxExhaustiveSpace bounds the number of allocations Exhaustive will
// enumerate before refusing.
const maxExhaustiveSpace = 5_000_000

// Exhaustive enumerates every allocation of at most budget bits across the
// attributes (exactly budget when RequireFullBudget) and returns the C_D
// minimizer; ties break toward the lexicographically smallest bit vector so
// results are deterministic. It refuses combinatorially large spaces — use
// Greedy there.
func Exhaustive(numAttrs, budget int, p cost.Params, stats []cost.APStat, opt Options) (bitindex.Config, error) {
	if budget > bitindex.MaxTotalBits {
		// Unlike Greedy, the recursive walk would happily allocate every
		// budgeted bit, producing configurations no uint64 bucket id can
		// address; refuse up front (amrivet:bitbudget surfaced this).
		return bitindex.Config{}, fmt.Errorf("tuner: budget %d exceeds the %d-bit bucket id", budget, bitindex.MaxTotalBits)
	}
	space := 1.0
	for i := 0; i < numAttrs; i++ {
		space *= float64(budget + 1)
		if space > maxExhaustiveSpace {
			return bitindex.Config{}, fmt.Errorf("tuner: exhaustive space too large for %d attrs x %d bits", numAttrs, budget)
		}
	}

	best := bitindex.Config{Bits: make([]uint8, numAttrs)}
	bestCD := cost.CD(p, best, stats)
	haveBest := !opt.RequireFullBudget || budget == 0

	cur := make([]uint8, numAttrs)
	var walk func(attr, remaining int)
	walk = func(attr, remaining int) {
		if attr == numAttrs {
			if opt.RequireFullBudget && remaining != 0 {
				return
			}
			cfg := bitindex.Config{Bits: cur}
			cd := cost.CD(p, cfg, stats)
			if !haveBest || cd < bestCD-1e-12 {
				bestCD = cd
				best = cfg.Clone()
				haveBest = true
			}
			return
		}
		limit := min(remaining, opt.capFor(attr))
		for b := 0; b <= limit; b++ {
			cur[attr] = uint8(b)
			walk(attr+1, remaining-b)
		}
		cur[attr] = 0
	}
	walk(0, budget)
	if !haveBest {
		return bitindex.Config{}, fmt.Errorf("tuner: no allocation satisfies the constraints")
	}
	return best, nil
}

// Controller wraps the optimizer with a retuning policy: propose the best
// configuration for fresh statistics, and migrate only when the modelled
// cost improvement clears a hysteresis threshold (migration itself costs a
// full relocation of the state, so marginal wins are not worth it).
type Controller struct {
	// Params is the cost model the controller ranks configurations by.
	Params cost.Params
	// Budget is the total bit budget per state.
	Budget int
	// MinGain is the fractional C_D improvement required to migrate,
	// e.g. 0.05 = retune only for a ≥5% modelled win.
	MinGain float64
	// Opt constrains the allocation search.
	Opt Options
	// UseExhaustive selects the exact optimizer when the space allows;
	// greedy otherwise (and as fallback).
	UseExhaustive bool
}

// Propose returns the best configuration for the statistics and whether it
// improves on current enough to be worth migrating. With no statistics the
// current configuration is kept.
func (c *Controller) Propose(current bitindex.Config, stats []cost.APStat) (bitindex.Config, bool) {
	if len(stats) == 0 {
		return current, false
	}
	var next bitindex.Config
	if c.UseExhaustive {
		if ex, err := Exhaustive(current.NumAttrs(), c.Budget, c.Params, stats, c.Opt); err == nil {
			next = ex
		} else {
			next = Greedy(current.NumAttrs(), c.Budget, c.Params, stats, c.Opt)
		}
	} else {
		next = Greedy(current.NumAttrs(), c.Budget, c.Params, stats, c.Opt)
	}
	if next.Equal(current) {
		return current, false
	}
	curCD := cost.CD(c.Params, current, stats)
	nextCD := cost.CD(c.Params, next, stats)
	if nextCD >= curCD*(1-c.MinGain) {
		return current, false
	}
	return next, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
