package engine

import (
	"fmt"
	"math"
	"math/bits"

	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/hashindex"
	"amri/internal/hh"
	"amri/internal/metrics"
	"amri/internal/query"
	"amri/internal/router"
	"amri/internal/sim"
	"amri/internal/stem"
	"amri/internal/storage"
	"amri/internal/stream"
	"amri/internal/tuner"
	"amri/internal/tuple"
)

// task is one unit of queued work: either ingesting an arrival into its
// state or advancing a composite one probe step.
type task struct {
	ingest *tuple.Tuple     // non-nil: insert + start routing
	comp   *tuple.Composite // non-nil: probe the next state
}

func (t task) memBytes() int {
	if t.ingest != nil {
		return 48 + t.ingest.MemBytes()
	}
	// A queued probe is a materialized intermediate result: the engine
	// (like CAPE) carries the joined tuples' content with the request.
	// This is what makes a search-request backlog consume real memory —
	// the paper's reported OOM mechanism for overwhelmed contenders.
	m := 48 + t.comp.MemBytes()
	for _, p := range t.comp.Parts {
		if p != nil {
			m += p.MemBytes()
		}
	}
	return m
}

// Engine executes one contender over one workload.
type Engine struct {
	run RunConfig
	sys System

	q     *query.Query
	src   stream.Source
	gen   *stream.Generator // nil when an external Source is used
	rt    *router.Router
	crt   *router.ContentRouter // non-nil when ContentRouting is on
	clock *sim.Clock
	meter *sim.MemoryMeter
	stems []*stem.STeM

	queue      []task
	queueHead  int
	queueBytes int

	results   uint64
	probes    uint64
	retunes   int
	latencies []int64 // emission tick - driver arrival tick, per result

	// ctls holds one long-lived retuning controller per bit-index state:
	// cooldown, drift and migration-cost calibration accumulate across
	// tuning passes (a fresh controller per pass cannot provide thrash
	// protection). Built lazily on first tuning pass; nil entries are
	// states without a bit index. Rebuilt empty on recovery — tuner state
	// is regenerable, like the assessor tables (see recover.go).
	ctls []*tuner.Controller
	// tuneErr latches the first optimizer misconfiguration a tuning pass
	// surfaced; the run continues on the current configurations.
	tuneErr error

	shedTasks       uint64 // probe tasks dropped by soft-watermark degradation
	degradedTicks   int64  // ticks that ended over the soft watermark
	watermarkMisses int64  // degrade passes that could not reach the soft watermark

	probesPerState []uint64 // since last tuning pass, for λ_r estimation
	lensBuf        []int

	curTick int64

	// durableErr latches the first durable-store failure; persistence stops
	// there but the run continues (see DurableErr).
	durableErr error

	// allowance is the cumulative CPU capacity granted so far. Every
	// charge — expiry, tuning, migration, queue processing — draws from
	// the same pool, so maintenance-heavy contenders genuinely crowd out
	// their own query processing.
	allowance sim.Units

	warmupDone bool
}

// New builds an engine. The same RunConfig and seed given to different
// systems yields identical arrivals and routing randomness, so contenders
// are compared on exactly the same workload.
func New(run RunConfig, sys System) (*Engine, error) {
	if err := run.Validate(); err != nil {
		return nil, err
	}
	q := run.Query
	if q == nil {
		q = query.FourWay(60)
	}
	var gen *stream.Generator
	src := run.Source
	if src == nil {
		g, err := stream.New(q, run.Profile, run.Seed)
		if err != nil {
			return nil, err
		}
		gen, src = g, g
	}
	e := &Engine{
		run:            run,
		sys:            sys,
		q:              q,
		src:            src,
		gen:            gen,
		rt:             router.New(q.NumStreams(), run.Explore, run.Seed+1),
		clock:          sim.NewClock(run.CPUBudget),
		meter:          sim.NewMemoryMeter(run.MemCap),
		probesPerState: make([]uint64, q.NumStreams()),
		lensBuf:        make([]int, q.NumStreams()),
		ctls:           make([]*tuner.Controller, q.NumStreams()),
	}

	for s := 0; s < q.NumStreams(); s++ {
		spec := q.States[s]
		store, err := e.newStore(q, spec)
		if err != nil {
			return nil, err
		}
		asr, err := e.newAssessor(spec, uint64(s))
		if err != nil {
			return nil, err
		}
		st := stem.New(spec, store, asr, q.WindowTicks, run.Costs, e.clock)
		st.SetSlack(run.Profile.MaxDelay)
		e.stems = append(e.stems, st)
		e.meter.Register(fmt.Sprintf("state%d", s), st.MemBytes)
	}
	if run.ContentRouting {
		e.crt = router.NewContent(q.NumStreams(), 16, run.Explore, run.Seed+1)
	}
	e.meter.Register("queue", func() int { return e.queueBytes })
	return e, nil
}

// probeValue returns the value a probe into state j would use on its
// predicate with covered stream i (ok=false when they are not joined).
func (e *Engine) probeValue(comp *tuple.Composite, i, j int) (uint64, bool) {
	pos, ok := e.q.States[j].PosForPartner(i)
	if !ok {
		return 0, false
	}
	ja := e.q.States[j].JAS[pos]
	return uint64(comp.Parts[i].Attrs[ja.PartnerAttr]), true
}

// nextHop picks the next state for a composite via whichever router is
// active. States with no predicate toward the coverage are masked out —
// a cartesian hop would scan the whole state for nothing — unless nothing
// else remains (disconnected queries degrade to cross products, as SQL
// semantics require).
func (e *Engine) nextHop(comp *tuple.Composite) int {
	for i, st := range e.stems {
		e.lensBuf[i] = st.Len()
	}
	mask := comp.Done
	eligible := 0
	for j := range e.stems {
		if mask&(1<<uint(j)) != 0 {
			continue
		}
		if e.q.States[j].PatternForDone(comp.Done) == 0 {
			mask |= 1 << uint(j) // not joined to anything covered yet
		} else {
			eligible++
		}
	}
	if eligible == 0 {
		mask = comp.Done
	}
	if e.crt != nil {
		return e.crt.Next(mask, e.lensBuf, func(i, j int) (uint64, bool) {
			return e.probeValue(comp, i, j)
		})
	}
	return e.rt.Next(mask, e.lensBuf)
}

func (e *Engine) newStore(q *query.Query, spec *query.StateSpec) (storage.Store, error) {
	attrMap := make([]int, spec.NumAttrs())
	for i, ja := range spec.JAS {
		attrMap[i] = ja.Attr
	}
	switch e.sys.Index {
	case IndexBit:
		budget := e.run.BitBudget
		if e.run.AdaptiveBudget {
			// Size the initial directory from the expected steady state
			// (λ_d·W tuples); tuning re-sizes it as reality drifts.
			budget = adaptiveBudget(int(int64(e.run.Profile.LambdaD)*q.WindowTicks), e.run.BitBudget)
		}
		cfg := bitindex.Uniform(spec.NumAttrs(), budget)
		ix, err := bitindex.New(cfg, attrMap, nil, bitindex.WithDenseLimit(e.run.DenseLimit))
		if err != nil {
			return nil, err
		}
		return storage.NewBitStore(ix), nil
	case IndexHash:
		k := e.sys.HashIndexCount
		if k <= 0 {
			return nil, fmt.Errorf("engine: hash system needs at least 1 index, got %d", k)
		}
		// States with small join attribute sets (chain ends, star
		// satellites) cannot host more indices than they have patterns.
		if m := query.NumPatterns(spec.NumAttrs()); k > m {
			k = m
		}
		pats := defaultHashPatterns(spec.NumAttrs(), k)
		return hashindex.New(spec.NumAttrs(), attrMap, nil, pats)
	case IndexScan:
		return storage.NewScanStore(), nil
	default:
		return nil, fmt.Errorf("engine: unknown index kind %v", e.sys.Index)
	}
}

// defaultHashPatterns picks the k starting access modules: single attributes
// first, then pairs, then wider combinations — the natural priors before any
// statistics exist.
func defaultHashPatterns(numAttrs, k int) []query.Pattern {
	var pats []query.Pattern
	for level := 1; level <= numAttrs && len(pats) < k; level++ {
		query.AllPatterns(numAttrs, func(p query.Pattern) bool {
			if p.Count() == level {
				pats = append(pats, p)
			}
			return len(pats) < k
		})
	}
	return pats
}

func (e *Engine) newAssessor(spec *query.StateSpec, salt uint64) (assess.Assessor, error) {
	seed := e.run.Seed*1000003 + salt
	switch e.sys.Assess {
	case AssessNone:
		return nil, nil
	case AssessSRIA:
		return assess.NewSRIA(), nil
	case AssessDIA:
		return assess.NewDIA(), nil
	case AssessCSRIA:
		return assess.NewCSRIA(e.run.Epsilon)
	case AssessCDIARandom:
		return assess.NewCDIA(spec.NumAttrs(), e.run.Epsilon, hh.RollupRandom, seed)
	case AssessCDIAHighest:
		return assess.NewCDIA(spec.NumAttrs(), e.run.Epsilon, hh.RollupHighestCount, seed)
	default:
		return nil, fmt.Errorf("engine: unknown assess kind %v", e.sys.Assess)
	}
}

// Run executes the workload to the horizon or until the memory cap trips,
// returning the sampled throughput series.
func (e *Engine) Run() *metrics.RunResult {
	return e.runFrom(0)
}

// runFrom is Run's body, parameterized on the starting tick so Recover can
// resume a restored engine mid-run.
func (e *Engine) runFrom(startTick int64) *metrics.RunResult {
	res := &metrics.RunResult{Name: e.sys.Name, End: metrics.EndCompleted, ResumedTick: startTick}
	sample := func(tick int64) {
		used := e.meter.Used()
		if used > res.PeakMemBytes {
			res.PeakMemBytes = used
		}
		res.Points = append(res.Points, metrics.Point{
			Tick: tick, Results: e.results, MemBytes: used,
			Backlog: len(e.queue) - e.queueHead,
		})
	}

	var tick int64
	for tick = startTick; tick < e.run.MaxTicks; tick++ {
		e.curTick = tick
		// 0. Re-exploration: routes are re-learned at the start of every
		// drift epoch, then the router settles down.
		if e.run.Profile.EpochTicks > 0 && e.run.ExploreBurst > 0 {
			rate := e.run.Explore
			if tick%e.run.Profile.EpochTicks < e.run.BurstTicks {
				rate = e.run.ExploreBurst
			}
			e.rt.SetExplore(rate)
			if e.crt != nil {
				e.crt.SetExplore(rate)
			}
		}

		// 1. Window expiry (mandatory maintenance, charged), plus one
		// bounded step of any in-flight incremental migration.
		for s, st := range e.stems {
			st.Expire(tick)
			if e.run.IncrementalMigration {
				if bs, ok := st.Store().(storage.BitStore); ok && bs.Migrating() {
					step := e.run.MigrateStepTuples
					if step <= 0 {
						step = 500
					}
					mst, done := bs.MigrateStep(step)
					e.clock.ChargeCat(sim.CatMaintain, sim.Units(mst.Hashes)*e.run.Costs.Hash+
						sim.Units(mst.Tuples)*e.run.Costs.Insert)
					if ctl := e.ctls[s]; ctl != nil {
						// Realized drain work feeds the controller's
						// predicted-vs-realized ledger and calibrates the
						// next migration price.
						ctl.RecordDrain(uint64(mst.Tuples), uint64(mst.Hashes), done)
					}
				}
			}
		}

		// 2. Arrivals enter the work queue.
		for _, t := range e.src.Tick(tick) {
			e.push(task{ingest: t})
		}

		// 3. Spend the tick's CPU grant; leftovers backlog. The grant is
		// cumulative and everything charged this tick (expiry above,
		// tuning below, migrations) already drew from it, so maintenance
		// overruns reduce the processing capacity of subsequent ticks.
		e.allowance += e.run.CPUBudget
		for e.clock.Spent() < e.allowance {
			tk, ok := e.pop()
			if !ok {
				break
			}
			e.process(tk)
		}

		// 4. Index tuning at the configured cadence.
		if tick+1 == e.run.WarmupTicks {
			e.tuneAll()
			e.warmupDone = true
			if !e.sys.Adaptive {
				// Non-adapting contenders freeze: no more statistics, no
				// more migrations — exactly the Figure 7 baselines.
				for _, st := range e.stems {
					st.Assessor = nil
				}
			}
		} else if e.warmupDone && e.sys.Adaptive && (tick+1-e.run.WarmupTicks)%e.run.AssessInterval == 0 {
			e.tuneAll()
		}

		// 5. Memory pressure: past the soft watermark, degrade gracefully
		// (shed reconstructible work) before sampling the hard cap.
		if e.run.SoftMemRatio > 0 && e.meter.OverRatio(e.run.SoftMemRatio) {
			e.degrade()
			e.degradedTicks++
		}
		// Sample and check the memory cap.
		if tick%e.run.SampleEvery == 0 {
			sample(tick)
		}
		if e.meter.OverCap() {
			res.End = metrics.EndOOM
			break
		}

		// 6. Durability boundary: persist a checkpoint at the cadence (only
		// when quiescent — with work still queued the states are mid-tick in
		// a way the checkpoint cannot represent, so the boundary is skipped
		// and recovery rolls back to the previous quiescent one), then honor
		// a scheduled crash point.
		if e.run.Durable != nil && (tick+1)%e.durableEvery() == 0 && e.Backlog() == 0 {
			e.persistCheckpoint(tick)
		}
		if e.run.CrashAfterTicks > 0 && tick+1 == e.run.CrashAfterTicks {
			res.End = metrics.EndCrashed
			break
		}
	}
	if tick > e.run.MaxTicks {
		tick = e.run.MaxTicks
	}
	sample(tick)
	if res.End == metrics.EndCompleted && e.degradedTicks > 0 {
		res.End = metrics.EndDegraded
	}
	res.ShedTasks = e.shedTasks
	res.DegradedTicks = e.degradedTicks
	res.WatermarkMisses = e.watermarkMisses
	res.EndTick = tick
	res.TotalResults = e.results
	res.Probes = e.probes
	res.Retunes = e.retunes
	res.CostUnits = float64(e.clock.Spent())
	res.CostBreakdown = e.clock.Breakdown()
	res.Latency = metrics.SummarizeLatencies(e.latencies)
	var tsum tuner.Summary
	for _, ctl := range e.ctls {
		if ctl != nil {
			tsum.Add(ctl.Summary())
		}
	}
	res.Tuner = metrics.TunerSummary{
		Passes:           tsum.Passes,
		Migrations:       tsum.Migrations,
		CooldownHolds:    tsum.CooldownHolds,
		FlipFlopHolds:    tsum.FlipFlopHolds,
		Uneconomical:     tsum.Uneconomical,
		PredictedMigCost: tsum.PredictedMigCost,
		RealizedMigCost:  tsum.RealizedMigCost,
		Completed:        tsum.Completed,
		Aborted:          tsum.Aborted,
	}
	for s, st := range e.stems {
		switch store := st.Store().(type) {
		case storage.BitStore:
			res.FinalConfigs = append(res.FinalConfigs, fmt.Sprintf("S%d:%v", s, store.Config()))
		case *hashindex.Store:
			res.FinalConfigs = append(res.FinalConfigs, fmt.Sprintf("S%d:%s", s, store.String()))
		}
	}
	return res
}

// degrade sheds reconstructible memory until the resident set is back under
// the soft watermark: assessment statistics go first (they rebuild from
// live traffic and cost no results), then queued probe tasks, oldest first
// (each is a materialized intermediate result — dropping one loses at most
// the join results it would have driven, never stored data). Ingest tasks
// are never shed: arrivals are data, not reconstructible work.
func (e *Engine) degrade() {
	soft := int(e.run.SoftMemRatio * float64(e.run.MemCap))
	for _, st := range e.stems {
		if st.Assessor != nil {
			st.Assessor.Reset()
		}
	}
	need := e.meter.Used() - soft
	if need <= 0 {
		return
	}
	freed := 0
	live := e.queue[e.queueHead:]
	kept := live[:0]
	for _, t := range live {
		if freed < need && t.comp != nil {
			b := t.memBytes()
			freed += b
			e.queueBytes -= b
			e.shedTasks++
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(live); i++ {
		live[i] = task{}
	}
	e.queue = e.queue[:e.queueHead+len(kept)]
	// Shedding frees reconstructible memory only; when the resident set is
	// dominated by stored tuples, even a full sweep can leave the system
	// over the watermark. Re-check so the miss is visible in the run
	// metrics instead of silently reporting a successful degrade.
	if e.meter.Used() > soft {
		e.watermarkMisses++
	}
}

func (e *Engine) push(t task) {
	e.queue = append(e.queue, t)
	e.queueBytes += t.memBytes()
}

func (e *Engine) pop() (task, bool) {
	if e.queueHead >= len(e.queue) {
		return task{}, false
	}
	t := e.queue[e.queueHead]
	e.queue[e.queueHead] = task{}
	e.queueHead++
	e.queueBytes -= t.memBytes()
	if e.queueHead > 4096 && e.queueHead*2 > len(e.queue) {
		e.queue = append([]task(nil), e.queue[e.queueHead:]...)
		e.queueHead = 0
	}
	return t, true
}

func (e *Engine) process(t task) {
	if t.ingest != nil {
		// Selection push-down: tuples failing a WHERE filter are dropped
		// before touching any state.
		if nf := e.q.FilterCount(t.ingest.Stream); nf > 0 {
			e.clock.ChargeCat(sim.CatSearch, sim.Units(nf)*e.run.Costs.Compare)
			if !e.q.Accepts(t.ingest) {
				return
			}
		}
		e.stems[t.ingest.Stream].Insert(t.ingest)
		e.push(task{comp: tuple.NewComposite(e.q.NumStreams(), t.ingest)})
		return
	}

	comp := t.comp
	next := e.nextHop(comp)
	e.clock.Charge(e.run.Costs.Route)
	if next < 0 {
		return
	}
	pr := e.stems[next].Probe(comp)
	e.probes++
	e.probesPerState[next]++

	// Clean single-predicate observations feed the router's estimates.
	if comp.Count() == 1 {
		src := bits.TrailingZeros32(comp.Done)
		if e.crt != nil {
			if v, ok := e.probeValue(comp, src, next); ok {
				e.crt.Observe(src, next, v, len(pr.Matches), e.stems[next].Len())
			}
		} else {
			e.rt.ObservePair(src, next, len(pr.Matches), e.stems[next].Len())
		}
	}

	for _, m := range pr.Matches {
		nc := comp.Extend(m)
		if nc.Complete(e.q.NumStreams()) {
			e.results++
			e.latencies = append(e.latencies, e.curTick-nc.Driver().TS)
			e.clock.Charge(e.run.Costs.Emit)
			if e.run.OnResult != nil {
				e.run.OnResult(nc, e.curTick)
			}
		} else {
			e.push(task{comp: nc})
		}
	}
}

// tuneAll runs one assessment + index selection pass over every state.
func (e *Engine) tuneAll() {
	interval := e.run.AssessInterval
	if !e.warmupDone {
		interval = e.run.WarmupTicks
	}
	for s, st := range e.stems {
		if st.Assessor == nil {
			continue
		}
		stats := st.Assessor.Results(e.run.Theta)
		lambdaR := float64(e.probesPerState[s]) / float64(interval)
		e.probesPerState[s] = 0
		if !e.run.CumulativeAssessment {
			st.Assessor.Reset()
		}
		if len(stats) == 0 {
			continue
		}
		params := cost2Params(e.run, lambdaR, float64(e.q.WindowTicks))

		switch store := st.Store().(type) {
		case storage.BitStore:
			if store.Migrating() {
				// Let the in-flight incremental migration finish before
				// considering another move.
				continue
			}
			budget := e.run.BitBudget
			if e.run.AdaptiveBudget {
				budget = adaptiveBudget(store.Len(), e.run.BitBudget)
			}
			ctl := e.ctls[s]
			if ctl == nil {
				ctl = e.newController(st.Spec)
				e.ctls[s] = ctl
			}
			ctl.SetParams(params)
			ctl.SetBudget(budget)
			pr, err := ctl.Propose(store.Config(), stats, store.Len())
			if err != nil {
				if e.tuneErr == nil {
					e.tuneErr = err
				}
				continue
			}
			if pr.Migrate() {
				if e.run.IncrementalMigration {
					if err := store.StartMigration(pr.To); err == nil {
						e.retunes++
					} else {
						ctl.RecordAbort()
					}
					continue
				}
				mst, err := store.Migrate(pr.To)
				if err == nil {
					e.clock.ChargeCat(sim.CatMaintain, sim.Units(mst.Hashes)*e.run.Costs.Hash+
						sim.Units(mst.Tuples)*e.run.Costs.Insert)
					e.retunes++
					ctl.RecordDrain(uint64(mst.Tuples), uint64(mst.Hashes), true)
				} else {
					ctl.RecordAbort()
				}
			}
		case *hashindex.Store:
			pats := topPatterns(stats, e.sys.HashIndexCount)
			if len(pats) > 0 && !samePatternSet(pats, store.IndexPatterns()) {
				rst, err := store.Retune(pats)
				if err == nil {
					e.clock.ChargeCat(sim.CatMaintain, sim.Units(rst.Hashes)*e.run.Costs.Hash+
						sim.Units(rst.KeyOps)*e.run.Costs.KeyMaint+
						sim.Units(rst.Tuples)*e.run.Costs.Insert)
					e.retunes++
				}
			}
		}
	}
}

// newController builds one state's long-lived retuning controller. The v2
// policy is the default; RunConfig.LegacyTuner zeroes every v2 knob, which
// reproduces the old MinGain-only behaviour exactly.
func (e *Engine) newController(spec *query.StateSpec) *tuner.Controller {
	ctl := &tuner.Controller{
		MinGain:       e.run.MinGain,
		UseExhaustive: spec.NumAttrs() <= 4 && e.run.BitBudget <= 16,
		Opt:           tuner.Options{MaxBitsPerAttr: e.domainCaps(spec)},
	}
	if e.run.LegacyTuner {
		return ctl
	}
	ctl.Horizon = e.run.TuneHorizon
	if ctl.Horizon == 0 {
		ctl.Horizon = 4 * float64(e.run.AssessInterval)
	}
	ctl.Cooldown = e.run.TuneCooldown
	if ctl.Cooldown == 0 {
		ctl.Cooldown = 1
	}
	ctl.DriftSense = e.run.DriftSense
	if ctl.DriftSense == 0 {
		ctl.DriftSense = 4
	}
	if e.run.IncrementalMigration {
		// The simulator drains MigrateStepTuples per tick, and a tick is
		// the cost model's time unit.
		step := e.run.MigrateStepTuples
		if step <= 0 {
			step = 500
		}
		ctl.DrainRate = float64(step)
	}
	return ctl
}

// TuneErr reports the first optimizer misconfiguration a tuning pass hit
// (nil when none); such passes keep their configurations.
func (e *Engine) TuneErr() error { return e.tuneErr }

// adaptiveBudget sizes the IC to the state: enough bits that buckets hold a
// handful of tuples each (log2(len)+2), never more than the configured cap
// and never fewer than 4.
func adaptiveBudget(stateLen, maxBits int) int {
	b := 4
	for (1<<uint(b)) < stateLen*4 && b < maxBits {
		b++
	}
	return b
}

// domainCaps caps each attribute's bits at the log2 of the largest domain
// it can draw from — bits beyond an attribute's cardinality cannot spread
// tuples (the paper assumes ranges and distributions are known). Replayed
// traces have unknown domains: no caps then.
func (e *Engine) domainCaps(spec *query.StateSpec) []uint8 {
	if e.gen == nil {
		return nil
	}
	caps := make([]uint8, spec.NumAttrs())
	var maxDom uint64
	for _, d := range e.run.Profile.Domains {
		if d > maxDom {
			maxDom = d
		}
	}
	b := uint8(math.Ceil(math.Log2(float64(maxDom + 1))))
	for i := range caps {
		caps[i] = b
	}
	return caps
}

func cost2Params(run RunConfig, lambdaR, window float64) cost.Params {
	return cost.Params{
		LambdaD: float64(run.Profile.LambdaD),
		LambdaR: lambdaR,
		Ch:      float64(run.Costs.Hash),
		Cc:      float64(run.Costs.Compare),
		Window:  window,
	}
}

// topPatterns picks the k most frequent non-empty patterns — the paper's
// "conventional index selection" for the hash baseline.
func topPatterns(stats []cost.APStat, k int) []query.Pattern {
	var out []query.Pattern
	for _, s := range stats { // stats arrive sorted by descending frequency
		if s.P == 0 {
			continue
		}
		out = append(out, s.P)
		if len(out) == k {
			break
		}
	}
	return out
}

func samePatternSet(a []query.Pattern, b []query.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[query.Pattern]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if !set[p] {
			return false
		}
	}
	return true
}

// Results returns the cumulative join results so far (exposed for tests).
func (e *Engine) Results() uint64 { return e.results }

// Backlog returns the number of queued tasks (exposed for tests).
func (e *Engine) Backlog() int { return len(e.queue) - e.queueHead }
