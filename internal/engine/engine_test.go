package engine

import (
	"bytes"
	"fmt"
	"testing"

	"amri/internal/metrics"
	"amri/internal/query"
	"amri/internal/stream"
	"amri/internal/tuple"
)

// quickConfig is a small, fast workload for mechanics tests: low rate,
// short horizon, no memory cap unless a test sets one.
func quickConfig() RunConfig {
	run := DefaultRunConfig()
	run.Profile = stream.Profile{
		LambdaD:      10,
		PayloadBytes: 40,
		EpochTicks:   40,
		Domains:      []uint64{8, 12, 18, 27, 40, 60},
	}
	run.MaxTicks = 120
	run.WarmupTicks = 30
	run.AssessInterval = 15
	run.CPUBudget = 50000
	run.MemCap = 0
	run.SampleEvery = 5
	return run
}

func mustRun(t *testing.T, run RunConfig, sys System) *metrics.RunResult {
	t.Helper()
	e, err := New(run, sys)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

func TestValidation(t *testing.T) {
	bad := quickConfig()
	bad.MaxTicks = 0
	if _, err := New(bad, AMRI(AssessSRIA)); err == nil {
		t.Error("zero horizon should fail")
	}
	bad = quickConfig()
	bad.WarmupTicks = bad.MaxTicks
	if _, err := New(bad, AMRI(AssessSRIA)); err == nil {
		t.Error("warmup >= horizon should fail")
	}
	bad = quickConfig()
	bad.Theta = 0.001 // below epsilon
	if _, err := New(bad, AMRI(AssessSRIA)); err == nil {
		t.Error("theta <= epsilon should fail")
	}
	bad = quickConfig()
	bad.BitBudget = 100
	if _, err := New(bad, AMRI(AssessSRIA)); err == nil {
		t.Error("100-bit budget should fail")
	}
	if _, err := New(quickConfig(), HashSystem(0)); err == nil {
		t.Error("hash system with 0 indices should fail")
	}
	// Over-asking is clamped to each state's pattern count, not rejected —
	// heterogeneous topologies (chain ends, star satellites) host fewer
	// indices than their neighbours.
	if e, err := New(quickConfig(), HashSystem(8)); err != nil || e == nil {
		t.Errorf("hash system with 8 indices should clamp to 7: %v", err)
	}
	if _, err := New(quickConfig(), System{Name: "x", Index: IndexKind(99)}); err == nil {
		t.Error("unknown index kind should fail")
	}
	if _, err := New(quickConfig(), System{Name: "x", Index: IndexBit, Assess: AssessKind(99)}); err == nil {
		t.Error("unknown assess kind should fail")
	}
}

func TestRunProducesResults(t *testing.T) {
	r := mustRun(t, quickConfig(), AMRI(AssessCDIAHighest))
	if r.TotalResults == 0 {
		t.Fatal("no join results produced")
	}
	if r.End != metrics.EndCompleted {
		t.Fatalf("run ended %s", r.End)
	}
	if r.EndTick != 120 {
		t.Fatalf("EndTick = %d", r.EndTick)
	}
	if len(r.Points) == 0 {
		t.Fatal("no samples recorded")
	}
	if r.Probes == 0 || r.CostUnits == 0 {
		t.Fatal("no work recorded")
	}
	// Cumulative results never decrease.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Results < r.Points[i-1].Results {
			t.Fatal("cumulative results decreased")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, quickConfig(), AMRI(AssessCDIAHighest))
	b := mustRun(t, quickConfig(), AMRI(AssessCDIAHighest))
	if a.TotalResults != b.TotalResults || a.CostUnits != b.CostUnits || a.Retunes != b.Retunes {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	run := quickConfig()
	a := mustRun(t, run, AMRI(AssessCDIAHighest))
	run.Seed = 99
	b := mustRun(t, run, AMRI(AssessCDIAHighest))
	if a.TotalResults == b.TotalResults && a.CostUnits == b.CostUnits {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestMemCapTriggersOOM(t *testing.T) {
	run := quickConfig()
	run.MemCap = 200 << 10 // absurdly small: states alone exceed it
	r := mustRun(t, run, AMRI(AssessSRIA))
	if r.End != metrics.EndOOM {
		t.Fatalf("expected OOM, got %s", r.End)
	}
	if r.EndTick >= run.MaxTicks {
		t.Fatal("OOM should end the run early")
	}
}

func TestStaticSystemTunesOnceAndFreezes(t *testing.T) {
	run := quickConfig()
	r := mustRun(t, run, StaticBitmap())
	// One migration per state at warmup end, at most.
	if r.Retunes > 4 {
		t.Fatalf("static system retuned %d times", r.Retunes)
	}
	ad := mustRun(t, run, AMRI(AssessCDIAHighest))
	if ad.Retunes <= r.Retunes {
		t.Fatalf("adaptive system should retune more: %d vs %d", ad.Retunes, r.Retunes)
	}
}

func TestAssessNoneNeverTunes(t *testing.T) {
	r := mustRun(t, quickConfig(), ScanSystem())
	if r.Retunes != 0 {
		t.Fatalf("scan system retuned %d times", r.Retunes)
	}
}

func TestDIAMatchesSRIA(t *testing.T) {
	// The paper: DIA and SRIA share a code base and report equal results;
	// their engine runs must be identical.
	a := mustRun(t, quickConfig(), AMRI(AssessSRIA))
	b := mustRun(t, quickConfig(), AMRI(AssessDIA))
	if a.TotalResults != b.TotalResults || a.Retunes != b.Retunes {
		t.Fatalf("DIA diverged from SRIA: %d/%d vs %d/%d",
			a.TotalResults, a.Retunes, b.TotalResults, b.Retunes)
	}
}

func TestIndexedBeatsScanUnderPressure(t *testing.T) {
	run := quickConfig()
	// Tighten the CPU so indexing matters.
	run.CPUBudget = 6000
	amri := mustRun(t, run, AMRI(AssessCDIAHighest))
	scan := mustRun(t, run, ScanSystem())
	if amri.TotalResults <= scan.TotalResults {
		t.Fatalf("AMRI (%d) should beat full scans (%d) when CPU-bound",
			amri.TotalResults, scan.TotalResults)
	}
}

func TestBacklogGrowsWhenOverloaded(t *testing.T) {
	run := quickConfig()
	run.CPUBudget = 1500 // far below demand
	r := mustRun(t, run, ScanSystem())
	last := r.Points[len(r.Points)-1]
	if last.Backlog == 0 {
		t.Fatal("overloaded system should have a backlog")
	}
}

func TestHashOneFallsBehindHashSeven(t *testing.T) {
	// hash-1 serves only one access pattern and full-scans the rest
	// ("a backlog of active search requests occurs from the processing
	// delay caused by the large number of complete scans"); hash-7 indexes
	// every pattern. Under CPU pressure hash-1 must trail badly.
	run := quickConfig()
	run.CPUBudget = 8000
	one := mustRun(t, run, HashSystem(1))
	seven := mustRun(t, run, HashSystem(7))
	if one.TotalResults*2 >= seven.TotalResults {
		t.Fatalf("hash-1 (%d results) should trail hash-7 (%d) badly",
			one.TotalResults, seven.TotalResults)
	}
	lastOne := one.Points[len(one.Points)-1]
	if lastOne.Backlog == 0 {
		t.Fatal("scan-bound hash-1 should be backlogged")
	}
}

func TestSystemConstructors(t *testing.T) {
	if AMRI(AssessCDIAHighest).Name != "AMRI/CDIA-highest" {
		t.Fatal("AMRI name")
	}
	if HashSystem(3).Name != "hash-3" || !HashSystem(3).Adaptive {
		t.Fatal("HashSystem shape")
	}
	if StaticHashSystem(2).Adaptive {
		t.Fatal("StaticHashSystem must be non-adaptive")
	}
	if StaticBitmap().Adaptive {
		t.Fatal("StaticBitmap must be non-adaptive")
	}
	if ScanSystem().Index != IndexScan {
		t.Fatal("ScanSystem index kind")
	}
	// Stringers.
	if IndexBit.String() != "bit" || IndexHash.String() != "hash" || IndexScan.String() != "scan" {
		t.Fatal("IndexKind strings")
	}
	if AssessCDIARandom.String() != "CDIA-random" || AssessNone.String() != "none" {
		t.Fatal("AssessKind strings")
	}
}

func TestWarmupEqualStartAcrossSystems(t *testing.T) {
	// Before the warmup ends no contender has tuned: bit-index systems'
	// early samples should be very similar since they run the same uniform
	// configuration over the same workload.
	run := quickConfig()
	a := mustRun(t, run, AMRI(AssessCDIAHighest))
	b := mustRun(t, run, StaticBitmap())
	// Compare the sample taken just before warmup end (tick 25).
	if a.At(25) != b.At(25) {
		t.Fatalf("pre-warmup divergence: %d vs %d", a.At(25), b.At(25))
	}
}

// TestTraceReplayMatchesGenerator: running the engine from a Trace recorded
// off the generator reproduces the generator-driven run exactly.
func TestTraceReplayMatchesGenerator(t *testing.T) {
	run := quickConfig()
	live := mustRun(t, run, AMRI(AssessCDIAHighest))

	// Record the same workload to CSV and replay it.
	gen, err := stream.New(query.FourWay(60), run.Profile, run.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "tick,stream,seq,attr0,attr1,attr2")
	for tick := int64(0); tick < run.MaxTicks; tick++ {
		for _, tp := range gen.Tick(tick) {
			fmt.Fprintf(&buf, "%d,%d,%d,%d,%d,%d\n", tick, tp.Stream, tp.Seq,
				tp.Attrs[0], tp.Attrs[1], tp.Attrs[2])
		}
	}
	tr, err := stream.ParseTrace(&buf, run.Profile.PayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	run.Source = tr
	replay := mustRun(t, run, AMRI(AssessCDIAHighest))
	if replay.TotalResults != live.TotalResults {
		t.Fatalf("trace replay results %d != live %d", replay.TotalResults, live.TotalResults)
	}
}

func TestIncrementalMigrationRuns(t *testing.T) {
	run := quickConfig()
	run.IncrementalMigration = true
	run.MigrateStepTuples = 50
	r := mustRun(t, run, AMRI(AssessCDIAHighest))
	if r.Retunes == 0 {
		t.Fatal("incremental mode should still migrate")
	}
	if r.TotalResults == 0 {
		t.Fatal("no results under incremental migration")
	}
	// Correctness parity: the stop-the-world run over the same workload
	// finds a similar number of results (indexes never lose tuples either
	// way; only timing differs).
	base := mustRun(t, quickConfig(), AMRI(AssessCDIAHighest))
	lo, hi := float64(base.TotalResults)*0.9, float64(base.TotalResults)*1.1
	if got := float64(r.TotalResults); got < lo || got > hi {
		t.Fatalf("incremental results %d too far from stop-the-world %d",
			r.TotalResults, base.TotalResults)
	}
}

func TestContentRoutingRuns(t *testing.T) {
	run := quickConfig()
	run.ContentRouting = true
	r := mustRun(t, run, AMRI(AssessCDIAHighest))
	if r.TotalResults == 0 {
		t.Fatal("content routing produced nothing")
	}
	// Determinism holds for the content router too.
	r2 := mustRun(t, run, AMRI(AssessCDIAHighest))
	if r.TotalResults != r2.TotalResults {
		t.Fatal("content routing nondeterministic")
	}
}

func TestLatencySummaryPopulated(t *testing.T) {
	r := mustRun(t, quickConfig(), AMRI(AssessCDIAHighest))
	if r.Latency.Count == 0 || r.Latency.Count != r.TotalResults {
		t.Fatalf("latency count %d != results %d", r.Latency.Count, r.TotalResults)
	}
	if r.Latency.P99Tick < r.Latency.P50Tick || r.Latency.MaxTick < r.Latency.P99Tick {
		t.Fatalf("latency quantiles disordered: %+v", r.Latency)
	}
}

// TestTopologies: the engine handles chain and star joins, not just the
// paper's clique — and never takes cartesian hops (a satellite is probed
// only after the hub links it to the coverage).
func TestTopologies(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    *query.Query
	}{
		{"chain-4", query.Chain(4, 60)},
		{"star-5", query.Star(5, 60)},
	} {
		run := quickConfig()
		run.Query = tc.q
		r := mustRun(t, run, AMRI(AssessCDIAHighest))
		if r.TotalResults == 0 {
			t.Fatalf("%s produced no results", tc.name)
		}
		if r.Probes == 0 {
			t.Fatalf("%s probed nothing", tc.name)
		}
	}
}

// TestStarMatchesOracleThroughHub: correctness of the star topology against
// an independent brute-force count (which also validates the no-cartesian
// routing, since a cartesian hop would not change the result set — only
// its cost — but bugs there typically corrupt coverage masks).
func TestChainMatchesBruteForce(t *testing.T) {
	const window = 15
	q := query.Chain(3, window)
	prof := stream.Profile{
		LambdaD: 6, PayloadBytes: 10,
		Domains: []uint64{5, 8, 12, 17, 25, 33},
	}
	gen, err := stream.New(q, prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	var all []*tuple.Tuple
	const ticks = 30
	for tick := int64(0); tick < ticks; tick++ {
		all = append(all, gen.Tick(tick)...)
	}
	want := bruteForceJoin(q, all, window)

	run := DefaultRunConfig()
	run.Query = q
	run.Profile = prof
	run.Seed = 3
	run.MaxTicks = ticks
	run.WarmupTicks = 10
	run.CPUBudget = 1 << 30
	run.MemCap = 0
	run.Explore = 0.1
	run.ExploreBurst = 0
	e, err := New(run, AMRI(AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Run().TotalResults; got != want {
		t.Fatalf("chain engine found %d, oracle says %d", got, want)
	}
}

// TestSelectionFiltersPushDown: filters drop tuples at ingest, shrinking
// states and results; a filter rejecting everything yields zero results.
func TestSelectionFiltersPushDown(t *testing.T) {
	base := mustRun(t, quickConfig(), AMRI(AssessCDIAHighest))

	run := quickConfig()
	q := query.FourWay(60)
	// Keep only stream 0 tuples whose attr 0 is below 4 (domains start at
	// 8, so roughly half the smallest-domain epoch passes).
	if err := q.AddFilter(query.Filter{Stream: 0, Attr: 0, Op: query.OpLt, Value: 4}); err != nil {
		t.Fatal(err)
	}
	run.Query = q
	filtered := mustRun(t, run, AMRI(AssessCDIAHighest))
	if filtered.TotalResults >= base.TotalResults {
		t.Fatalf("filter should shrink results: %d vs %d", filtered.TotalResults, base.TotalResults)
	}
	if filtered.TotalResults == 0 {
		t.Fatal("partial filter should not eliminate everything")
	}

	run2 := quickConfig()
	q2 := query.FourWay(60)
	if err := q2.AddFilter(query.Filter{Stream: 1, Attr: 0, Op: query.OpGt, Value: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	run2.Query = q2
	none := mustRun(t, run2, AMRI(AssessCDIAHighest))
	if none.TotalResults != 0 {
		t.Fatalf("all-rejecting filter still produced %d results", none.TotalResults)
	}
}

// TestCostBreakdownSumsToOne: the per-category cost shares partition all
// charged work.
func TestCostBreakdownSumsToOne(t *testing.T) {
	r := mustRun(t, quickConfig(), HashSystem(7))
	var sum float64
	for _, f := range r.CostBreakdown {
		if f < 0 || f > 1 {
			t.Fatalf("share out of range: %v", r.CostBreakdown)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %g: %v", sum, r.CostBreakdown)
	}
	// A 7-index hash system must spend a visible share on maintenance.
	if r.CostBreakdown["maintain"] < 0.2 {
		t.Fatalf("hash-7 maintenance share suspiciously low: %v", r.CostBreakdown)
	}
}

// Metamorphic properties: more resources never hurt.
func TestMoreCPUNeverHurts(t *testing.T) {
	run := quickConfig()
	run.CPUBudget = 4000
	low := mustRun(t, run, AMRI(AssessCDIAHighest))
	run.CPUBudget = 40000
	high := mustRun(t, run, AMRI(AssessCDIAHighest))
	if high.TotalResults < low.TotalResults {
		t.Fatalf("more CPU lost results: %d -> %d", low.TotalResults, high.TotalResults)
	}
}

func TestMoreMemoryNeverEndsEarlier(t *testing.T) {
	run := quickConfig()
	run.CPUBudget = 2500 // heavy backlog so memory matters
	run.MemCap = 2 << 20
	small := mustRun(t, run, AMRI(AssessCDIAHighest))
	run.MemCap = 64 << 20
	big := mustRun(t, run, AMRI(AssessCDIAHighest))
	if big.EndTick < small.EndTick {
		t.Fatalf("more memory died earlier: %d -> %d", small.EndTick, big.EndTick)
	}
	if big.TotalResults < small.TotalResults {
		t.Fatalf("more memory lost results: %d -> %d", small.TotalResults, big.TotalResults)
	}
}

func TestBurstyArrivalsRun(t *testing.T) {
	run := quickConfig()
	run.Profile.RateAmplitude = 0.6
	run.Profile.RatePeriod = 30
	r := mustRun(t, run, AMRI(AssessCDIAHighest))
	if r.TotalResults == 0 {
		t.Fatal("bursty workload produced nothing")
	}
}

func TestParseSystem(t *testing.T) {
	cases := map[string]string{
		"amri":        "AMRI/CDIA-highest",
		"amri-cdia-r": "AMRI/CDIA-random",
		"amri-sria":   "AMRI/SRIA",
		"amri-dia":    "AMRI/DIA",
		"amri-csria":  "AMRI/CSRIA",
		"static":      "static-bitmap",
		"scan":        "scan",
		"hash-5":      "hash-5",
	}
	for in, want := range cases {
		sys, err := ParseSystem(in)
		if err != nil || sys.Name != want {
			t.Errorf("ParseSystem(%q) = %q, %v", in, sys.Name, err)
		}
	}
	for _, bad := range []string{"", "hash-0", "hash-x", "turbo"} {
		if _, err := ParseSystem(bad); err == nil {
			t.Errorf("ParseSystem(%q) should fail", bad)
		}
	}
}

func TestAdaptiveBudgetSizing(t *testing.T) {
	if got := adaptiveBudget(0, 16); got != 4 {
		t.Fatalf("empty state budget = %d, want the floor 4", got)
	}
	if got := adaptiveBudget(100, 16); got < 8 || got > 10 {
		t.Fatalf("100-tuple budget = %d, want ~log2(400)", got)
	}
	if got := adaptiveBudget(1<<20, 12); got != 12 {
		t.Fatalf("budget must cap at max: %d", got)
	}
}

func TestAdaptiveBudgetRuns(t *testing.T) {
	run := quickConfig()
	run.AdaptiveBudget = true
	run.BitBudget = 16
	r := mustRun(t, run, AMRI(AssessCDIAHighest))
	if r.TotalResults == 0 {
		t.Fatal("adaptive budget produced nothing")
	}
	// The tuned configs must never exceed the cap.
	for _, c := range r.FinalConfigs {
		if len(c) == 0 {
			t.Fatal("missing config")
		}
	}
}
