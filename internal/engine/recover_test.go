package engine

// Whole-engine crash/recover regression: with durability on and an ample
// CPU budget (every tick fully drains), a run killed at any boundary and
// resumed by Recover produces exactly the uncrashed run's result set — the
// engine-level twin of the pipeline's crash-point sweep pin.

import (
	"testing"

	"amri/internal/metrics"
	"amri/internal/storage"
	"amri/internal/stream"
	"amri/internal/tuple"
)

// runDigest is an order-independent fingerprint of a run's emitted results:
// each result hashes its member tuples' identities and XORs into the
// accumulator, so two runs match iff they emitted the same result multiset.
type runDigest struct {
	xor, n uint64
}

func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (d *runDigest) add(c *tuple.Composite, _ int64) {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range c.Parts {
		if p == nil {
			continue
		}
		h += mix(uint64(p.Stream)*0x100000001b3 ^ p.Seq ^ uint64(p.TS)<<20)
	}
	d.xor ^= mix(h)
	d.n++
}

// durableQuick is quickConfig scaled for crash sweeps: short horizon and an
// effectively unbounded CPU budget so every tick drains (the regime where
// recovery is exactly lossless; see recover.go).
func durableQuick() RunConfig {
	run := quickConfig()
	run.MaxTicks = 40
	run.WarmupTicks = 10
	run.AssessInterval = 10
	run.CPUBudget = 1 << 30
	return run
}

func TestEngineDurabilityUnperturbed(t *testing.T) {
	run := durableQuick()
	plain := mustRun(t, run, AMRI(AssessCDIAHighest))
	run.Durable = storage.NewMemStore()
	durable := mustRun(t, run, AMRI(AssessCDIAHighest))
	if plain.TotalResults != durable.TotalResults || plain.CostUnits != durable.CostUnits ||
		plain.Retunes != durable.Retunes || plain.End != durable.End {
		t.Fatalf("durable store perturbed the run: %+v vs %+v", plain, durable)
	}
}

// TestEngineCrashRecoverSweep kills a durable run at every tick boundary
// and recovers it; each recovered run must end digest-identical to the
// uncrashed reference with the cumulative result counter intact.
func TestEngineCrashRecoverSweep(t *testing.T) {
	base := durableQuick()
	ref := &runDigest{}
	run := base
	run.OnResult = ref.add
	serial := mustRun(t, run, AMRI(AssessCDIAHighest))
	if serial.TotalResults == 0 {
		t.Fatal("reference run produced no results")
	}
	if serial.TotalResults != ref.n {
		t.Fatalf("OnResult saw %d results, counter says %d", ref.n, serial.TotalResults)
	}

	for crash := int64(1); crash < base.MaxTicks; crash++ {
		st := storage.NewMemStore()
		d := &runDigest{}
		run := base
		run.Durable = st
		run.CrashAfterTicks = crash
		run.OnResult = d.add
		res := mustRun(t, run, AMRI(AssessCDIAHighest))
		if res.End != metrics.EndCrashed || res.EndTick != crash-1 {
			t.Fatalf("crash@%d: End=%s EndTick=%d", crash, res.End, res.EndTick)
		}
		run.CrashAfterTicks = 0
		rec, err := Recover(run, AMRI(AssessCDIAHighest))
		if err != nil {
			t.Fatalf("crash@%d: Recover: %v", crash, err)
		}
		if rec.End != metrics.EndCompleted {
			t.Fatalf("crash@%d: recovered run ended %s", crash, rec.End)
		}
		if rec.ResumedTick != crash {
			t.Fatalf("crash@%d: resumed at %d", crash, rec.ResumedTick)
		}
		if rec.TotalResults != serial.TotalResults {
			t.Fatalf("crash@%d: %d results, want %d", crash, rec.TotalResults, serial.TotalResults)
		}
		if d.xor != ref.xor || d.n != ref.n {
			t.Fatalf("crash@%d: result digest diverged (%d results xor %x, want %d xor %x)",
				crash, d.n, d.xor, ref.n, ref.xor)
		}
	}
}

// TestEngineRecoverCoarseCadence: with DurableEvery > 1 recovery rolls back
// to the last quiescent boundary and replays the gap; re-emitted results
// fold into the restored counter, so the final totals and the final state
// contents still match the uncrashed run exactly.
func TestEngineRecoverCoarseCadence(t *testing.T) {
	base := durableQuick()
	sys := AMRI(AssessCDIAHighest)
	es, err := New(base, sys)
	if err != nil {
		t.Fatal(err)
	}
	serial := es.Run()

	run := base
	run.Durable = storage.NewMemStore()
	run.DurableEvery = 5
	run.CrashAfterTicks = 13 // rolls back to the boundary after tick 9
	if res := mustRun(t, run, sys); res.End != metrics.EndCrashed {
		t.Fatalf("crash segment ended %s", res.End)
	}
	run.CrashAfterTicks = 0
	er, err := New(run, sys)
	if err != nil {
		t.Fatal(err)
	}
	resume, err := er.restoreFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if resume != 10 {
		t.Fatalf("resumed at %d, want rollback to 10", resume)
	}
	rec := er.runFrom(resume)
	if rec.TotalResults != serial.TotalResults {
		t.Fatalf("recovered %d results, want %d", rec.TotalResults, serial.TotalResults)
	}
	// State fidelity: the retained windows end identical state by state.
	for s := range es.stems {
		if es.stems[s].Len() != er.stems[s].Len() {
			t.Errorf("state %d: recovered len %d, serial len %d", s, er.stems[s].Len(), es.stems[s].Len())
		}
	}
	if err := er.DurableErr(); err != nil {
		t.Fatalf("durable store failed during recovered run: %v", err)
	}
}

// TestEngineFileStoreRecover drives the whole-process model through the
// real file path: crash, close the store, reopen the directory, recover.
func TestEngineFileStoreRecover(t *testing.T) {
	base := durableQuick()
	ref := &runDigest{}
	run := base
	run.OnResult = ref.add
	serial := mustRun(t, run, AMRI(AssessCDIAHighest))

	fs, err := storage.OpenFileStore(t.TempDir(), storage.WithSyncEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	d := &runDigest{}
	run = base
	run.Durable = fs
	run.CrashAfterTicks = 17
	run.OnResult = d.add
	if res := mustRun(t, run, AMRI(AssessCDIAHighest)); res.End != metrics.EndCrashed {
		t.Fatalf("crash segment ended %s", res.End)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	dir := fs.Dir()
	fs2, err := storage.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	run.Durable = fs2
	rec, err := Recover(run, AMRI(AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalResults != serial.TotalResults || d.xor != ref.xor {
		t.Fatalf("recovered %d results xor %x, want %d xor %x", rec.TotalResults, d.xor, serial.TotalResults, ref.xor)
	}
}

func TestEngineDurableValidation(t *testing.T) {
	run := durableQuick()
	run.CrashAfterTicks = 5
	if _, err := New(run, AMRI(AssessCDIAHighest)); err == nil {
		t.Error("CrashAfterTicks without Durable accepted")
	}
	run = durableQuick()
	run.Durable = storage.NewMemStore()
	run.Source = &stream.Trace{}
	if _, err := New(run, AMRI(AssessCDIAHighest)); err == nil {
		t.Error("Durable with an external Source accepted")
	}
	run = durableQuick()
	if _, err := Recover(run, AMRI(AssessCDIAHighest)); err == nil {
		t.Error("Recover without Durable accepted")
	}
	run.Durable = storage.NewMemStore()
	if _, err := Recover(run, AMRI(AssessCDIAHighest)); err == nil {
		t.Error("Recover from an empty store accepted")
	}
}
