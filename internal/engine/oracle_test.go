package engine

import (
	"testing"

	"amri/internal/query"
	"amri/internal/stream"
	"amri/internal/tuple"
)

// bruteForceJoin computes the exact expected result count of the four-way
// join independently of the engine: for every tuple t (as the newest member
// of a result) it joins the other three streams' tuples that arrived before
// t and are inside t's window, checking every pairwise predicate directly.
// No index, no router, no operators — a pure oracle.
func bruteForceJoin(q *query.Query, tuples []*tuple.Tuple, window int64) uint64 {
	n := q.NumStreams()
	byStream := make([][]*tuple.Tuple, n)
	for _, t := range tuples {
		byStream[t.Stream] = append(byStream[t.Stream], t)
	}
	// predAttr[i][j] = attribute position of stream i joining stream j.
	predAttr := make([][]int, n)
	for i := range predAttr {
		predAttr[i] = make([]int, n)
		for j := range predAttr[i] {
			predAttr[i][j] = -1
		}
	}
	for _, p := range q.Preds {
		predAttr[p.Left][p.Right] = p.LeftAttr
		predAttr[p.Right][p.Left] = p.RightAttr
	}
	matches := func(a, b *tuple.Tuple) bool {
		ai, bi := predAttr[a.Stream][b.Stream], predAttr[b.Stream][a.Stream]
		if ai < 0 {
			return true // no predicate between the pair
		}
		return a.Attrs[ai] == b.Attrs[bi]
	}

	var count uint64
	// The driver is the newest member: all others must have smaller
	// Arrival and TS within the driver's window.
	for _, d := range tuples {
		ok := func(x *tuple.Tuple) bool {
			return x.Arrival < d.Arrival && x.TS > d.TS-window && matches(d, x)
		}
		// Enumerate partners from every other stream (any arity of join).
		var others [][]*tuple.Tuple
		for s := 0; s < n; s++ {
			if s == d.Stream {
				continue
			}
			var cand []*tuple.Tuple
			for _, x := range byStream[s] {
				if ok(x) {
					cand = append(cand, x)
				}
			}
			others = append(others, cand)
		}
		// Recursive cross-check over the remaining streams: every chosen
		// pair must satisfy its predicate (absent predicates are vacuous).
		var chosen []*tuple.Tuple
		var walk func(level int)
		walk = func(level int) {
			if level == len(others) {
				count++
				return
			}
			for _, x := range others[level] {
				fits := true
				for _, c := range chosen {
					if !matches(c, x) {
						fits = false
						break
					}
				}
				if !fits {
					continue
				}
				chosen = append(chosen, x)
				walk(level + 1)
				chosen = chosen[:len(chosen)-1]
			}
		}
		walk(0)
	}
	return count
}

// TestEngineMatchesBruteForceOracle is the end-to-end correctness anchor:
// an unsaturated engine must produce exactly the result count an
// independent brute-force join computes over the same tuples.
func TestEngineMatchesBruteForceOracle(t *testing.T) {
	const window = 20
	q := query.FourWay(window)
	prof := stream.Profile{
		LambdaD:      6,
		PayloadBytes: 10,
		EpochTicks:   0, // stationary
		Domains:      []uint64{4, 6, 9, 13, 20, 30},
	}
	const ticks = 40

	for _, seed := range []uint64{1, 2, 3} {
		// Collect the exact workload the engine will see.
		gen, err := stream.New(q, prof, seed)
		if err != nil {
			t.Fatal(err)
		}
		var all []*tuple.Tuple
		for tick := int64(0); tick < ticks; tick++ {
			all = append(all, gen.Tick(tick)...)
		}
		want := bruteForceJoin(q, all, window)

		run := DefaultRunConfig()
		run.Query = q
		run.Profile = prof
		run.Seed = seed
		run.MaxTicks = ticks
		run.WarmupTicks = 10
		run.CPUBudget = 1 << 30 // never backlogged: nothing expires unseen
		run.MemCap = 0
		run.Explore = 0.2 // any routing still finds the same result set
		run.ExploreBurst = 0
		for _, sys := range []System{
			AMRI(AssessCDIAHighest),
			HashSystem(3),
			ScanSystem(),
		} {
			e, err := New(run, sys)
			if err != nil {
				t.Fatal(err)
			}
			got := e.Run().TotalResults
			if got != want {
				t.Fatalf("seed %d, %s: engine found %d results, oracle says %d",
					seed, sys.Name, got, want)
			}
		}
	}
}

// TestOutOfOrderMatchesOracle: with bounded arrival disorder the engine's
// timestamp-bucket expiry keeps window semantics exact — the brute-force
// oracle count still matches.
func TestOutOfOrderMatchesOracle(t *testing.T) {
	const window = 20
	q := query.FourWay(window)
	prof := stream.Profile{
		LambdaD:      6,
		PayloadBytes: 10,
		Domains:      []uint64{4, 6, 9, 13, 20, 30},
		MaxDelay:     8,
	}
	const ticks = 40
	gen, err := stream.New(q, prof, 11)
	if err != nil {
		t.Fatal(err)
	}
	var all []*tuple.Tuple
	for tick := int64(0); tick < ticks; tick++ {
		all = append(all, gen.Tick(tick)...)
	}
	want := bruteForceJoin(q, all, window)
	if want == 0 {
		t.Fatal("oracle found nothing; workload broken")
	}

	run := DefaultRunConfig()
	run.Query = q
	run.Profile = prof
	run.Seed = 11
	run.MaxTicks = ticks
	run.WarmupTicks = 10
	run.CPUBudget = 1 << 30
	run.MemCap = 0
	run.Explore = 0.1
	run.ExploreBurst = 0
	e, err := New(run, AMRI(AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Run().TotalResults; got != want {
		t.Fatalf("disorder run found %d, oracle says %d", got, want)
	}
}
