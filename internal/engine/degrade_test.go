package engine

// Graceful-degradation regression: an engine that would die of a
// backlog-driven OOM must instead survive to the horizon when the soft
// memory watermark is configured, by shedding queued probe work and
// assessment statistics — and must report the run as EndDegraded, not
// EndCompleted, because the output is complete in time but not content.

import (
	"testing"

	"amri/internal/metrics"
	"amri/internal/stream"
)

// pressureConfig underprovisions the CPU so probe work backlogs and the
// materialized intermediate results blow through a 1MiB cap.
func pressureConfig() RunConfig {
	run := DefaultRunConfig()
	run.Profile = stream.Profile{
		LambdaD:      10,
		PayloadBytes: 40,
		EpochTicks:   40,
		Domains:      []uint64{8, 12, 18, 27, 40, 60},
	}
	run.MaxTicks = 300
	run.WarmupTicks = 30
	run.AssessInterval = 15
	run.SampleEvery = 5
	run.CPUBudget = 5000
	run.MemCap = 1 << 20
	return run
}

func TestSoftWatermarkAvertsOOM(t *testing.T) {
	hard := mustRun(t, pressureConfig(), AMRI(AssessCDIAHighest))
	if hard.End != metrics.EndOOM {
		t.Fatalf("pressure config must OOM without the watermark, got %s", hard.End)
	}
	if hard.EndTick >= 300 {
		t.Fatal("the OOM must cut the run short for the comparison to mean anything")
	}

	run := pressureConfig()
	run.SoftMemRatio = 0.85
	soft := mustRun(t, run, AMRI(AssessCDIAHighest))
	if soft.End != metrics.EndDegraded {
		t.Fatalf("watermarked run ended %s, want %s", soft.End, metrics.EndDegraded)
	}
	if soft.EndTick != 300 {
		t.Fatalf("degraded run stopped at tick %d, want the full horizon", soft.EndTick)
	}
	if soft.ShedTasks == 0 || soft.DegradedTicks == 0 {
		t.Fatalf("degraded run reported no shedding: %d tasks, %d ticks",
			soft.ShedTasks, soft.DegradedTicks)
	}
	if soft.TotalResults <= hard.TotalResults {
		t.Fatalf("surviving longer should produce more results: %d (degraded) vs %d (OOM at %d)",
			soft.TotalResults, hard.TotalResults, hard.EndTick)
	}
	// The whole point of shedding: the resident set stays near the cap.
	if soft.PeakMemBytes > run.MemCap {
		t.Fatalf("degraded run still exceeded the cap: peak %d > %d", soft.PeakMemBytes, run.MemCap)
	}
}

func TestSoftWatermarkInertWithoutPressure(t *testing.T) {
	run := quickConfig()
	base := mustRun(t, run, AMRI(AssessCDIAHighest))
	run.SoftMemRatio = 0.85
	run.MemCap = 1 << 30 // never approached
	soft := mustRun(t, run, AMRI(AssessCDIAHighest))
	if soft.End != metrics.EndCompleted {
		t.Fatalf("unpressured watermarked run ended %s", soft.End)
	}
	if soft.ShedTasks != 0 || soft.DegradedTicks != 0 || soft.WatermarkMisses != 0 {
		t.Fatal("watermark fired with memory to spare")
	}
	if soft.TotalResults != base.TotalResults {
		t.Fatalf("inert watermark changed the run: %d vs %d results",
			soft.TotalResults, base.TotalResults)
	}
}

// TestWatermarkMissReported pins the degrade re-check: when the soft
// watermark sits below what the resident data alone occupies, shedding
// every reconstructible byte cannot reach it, and each such pass must be
// counted as a watermark miss rather than silently reported as a
// successful degrade. (The original degrade path never re-read the meter
// after shedding, so these passes were indistinguishable from effective
// ones.)
func TestWatermarkMissReported(t *testing.T) {
	run := pressureConfig()
	// 5% of the 1MiB cap is far below the stored-tuple resident set the
	// pressure workload accumulates, so degradation is structurally unable
	// to satisfy the watermark even though it still sheds the backlog.
	run.SoftMemRatio = 0.05
	res := mustRun(t, run, AMRI(AssessCDIAHighest))
	if res.DegradedTicks == 0 {
		t.Fatal("watermark never fired; the scenario exercises nothing")
	}
	if res.WatermarkMisses == 0 {
		t.Fatal("every degrade pass ended over the watermark, yet no miss was reported")
	}
	if res.WatermarkMisses > res.DegradedTicks {
		t.Fatalf("misses %d exceed degrade passes %d", res.WatermarkMisses, res.DegradedTicks)
	}
}

func TestSoftMemRatioValidation(t *testing.T) {
	run := quickConfig()
	run.SoftMemRatio = 1.5
	if _, err := New(run, AMRI(AssessCDIAHighest)); err == nil {
		t.Fatal("SoftMemRatio >= 1 must be rejected")
	}
	run.SoftMemRatio = -0.1
	if _, err := New(run, AMRI(AssessCDIAHighest)); err == nil {
		t.Fatal("negative SoftMemRatio must be rejected")
	}
}
