// Package engine wires the substrates into a running adaptive multi-route
// stream system: generators feed an Eddy-style router, composites probe
// STeM states, assessors watch every search request, and the tuner migrates
// index configurations — all on the simulation substrate's virtual clock
// and memory meter. One Engine executes one contender over one workload and
// produces the throughput series the paper's figures plot.
package engine

import (
	"fmt"
	"strconv"
	"strings"

	"amri/internal/query"
	"amri/internal/sim"
	"amri/internal/storage"
	"amri/internal/stream"
	"amri/internal/tuple"
)

// IndexKind selects a state storage backend.
type IndexKind int

const (
	// IndexBit is the AMRI bit-address index.
	IndexBit IndexKind = iota
	// IndexHash is the multi-hash-index baseline (access modules).
	IndexHash
	// IndexScan is the no-index baseline.
	IndexScan
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case IndexBit:
		return "bit"
	case IndexHash:
		return "hash"
	case IndexScan:
		return "scan"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// AssessKind selects an assessment method.
type AssessKind int

const (
	// AssessNone disables assessment (and with it all tuning).
	AssessNone AssessKind = iota
	// AssessSRIA is the exact self-reliant table.
	AssessSRIA
	// AssessCSRIA is SRIA with lossy-counting reduction.
	AssessCSRIA
	// AssessDIA is the lattice twin of SRIA.
	AssessDIA
	// AssessCDIARandom is CDIA with random combination.
	AssessCDIARandom
	// AssessCDIAHighest is CDIA with highest-count combination.
	AssessCDIAHighest
)

// String implements fmt.Stringer.
func (k AssessKind) String() string {
	switch k {
	case AssessNone:
		return "none"
	case AssessSRIA:
		return "SRIA"
	case AssessCSRIA:
		return "CSRIA"
	case AssessDIA:
		return "DIA"
	case AssessCDIARandom:
		return "CDIA-random"
	case AssessCDIAHighest:
		return "CDIA-highest"
	default:
		return fmt.Sprintf("AssessKind(%d)", int(k))
	}
}

// System describes one contender: which index backend its states use, which
// assessment method watches them, and whether tuning continues after the
// warmup (the paper's non-adapting contenders tune once on the quasi
// training data and then freeze).
type System struct {
	Name           string
	Index          IndexKind
	HashIndexCount int // number of access modules when Index == IndexHash
	Assess         AssessKind
	Adaptive       bool // keep retuning after warmup
}

// AMRI returns the paper's system: bit-address index with continuous
// tuning driven by the given assessment method.
func AMRI(a AssessKind) System {
	return System{Name: "AMRI/" + a.String(), Index: IndexBit, Assess: a, Adaptive: true}
}

// StaticBitmap is the non-adapting bitmap baseline of Figure 7: same index,
// same warmup-time configuration, no tuning afterwards.
func StaticBitmap() System {
	return System{Name: "static-bitmap", Index: IndexBit, Assess: AssessCDIAHighest, Adaptive: false}
}

// HashSystem is the adaptive multi-hash-index baseline with k access
// modules, tuned by highest-count CDIA like the paper's Figure 6 runs.
func HashSystem(k int) System {
	return System{Name: fmt.Sprintf("hash-%d", k), Index: IndexHash, HashIndexCount: k,
		Assess: AssessCDIAHighest, Adaptive: true}
}

// StaticHashSystem is the non-adapting hash baseline ("static non-adapting
// hash indices produced poor results").
func StaticHashSystem(k int) System {
	s := HashSystem(k)
	s.Name = fmt.Sprintf("static-hash-%d", k)
	s.Adaptive = false
	return s
}

// ScanSystem is the no-index floor.
func ScanSystem() System {
	return System{Name: "scan", Index: IndexScan, Assess: AssessNone}
}

// RunConfig is the shared workload and machine configuration of one
// experiment; every contender in a comparison runs under the same RunConfig
// and seed.
type RunConfig struct {
	// Query is the SPJ query; nil means the paper's 4-way join.
	Query *query.Query
	// Profile is the synthetic workload.
	Profile stream.Profile
	// Source optionally replaces the synthetic generator with any workload
	// source (e.g. a stream.Trace replay). Profile.LambdaD is still used
	// as the cost model's λ_d estimate, and the drift/burst machinery is
	// driven by Profile.EpochTicks.
	Source stream.Source
	// Seed fixes generator, router and assessor randomness.
	Seed uint64
	// MaxTicks is the run horizon in virtual seconds.
	MaxTicks int64
	// WarmupTicks is the quasi-training prefix: statistics are gathered
	// but no contender retunes until it ends, at which point every
	// contender performs one index selection (the paper's protocol).
	WarmupTicks int64
	// AssessInterval is how often adaptive contenders retune after warmup.
	AssessInterval int64
	// Theta and Epsilon are the assessment threshold and error rate.
	Theta, Epsilon float64
	// BitBudget is the total IC bits per state for bit-index contenders.
	BitBudget int
	// DenseLimit is the dense/sparse directory crossover in bits.
	DenseLimit int
	// CPUBudget is the machine capacity per tick in cost units; work
	// beyond it backlogs into the queue.
	CPUBudget sim.Units
	// MemCap is the simulated memory cap in bytes; exceeding it ends the
	// run (0 disables).
	MemCap int
	// SoftMemRatio enables graceful degradation: when the resident set
	// crosses SoftMemRatio·MemCap, the engine sheds queued probe work and
	// drops assessment statistics (both reconstructible) instead of
	// sailing into the hard cap. A run that degraded but finished ends
	// with metrics.EndDegraded. 0 disables (the default: contenders die
	// at the cap exactly as the paper reports).
	SoftMemRatio float64
	// Costs prices the primitive operations.
	Costs sim.CostTable
	// Explore is the router's baseline suboptimal-route probability.
	Explore float64
	// ExploreBurst and BurstTicks model re-exploration: for the first
	// BurstTicks of every drift epoch the router explores at ExploreBurst
	// (its selectivity estimates are stale), then settles back to Explore.
	// The burst is the source of the transient low-frequency access
	// patterns the paper's Section I-B discusses.
	ExploreBurst float64
	BurstTicks   int64
	// MinGain is the tuner's migration hysteresis.
	MinGain float64
	// LegacyTuner reverts retuning to the v1 policy — MinGain hysteresis
	// only, no migration pricing, no cooldown — the A/B baseline the tuner
	// bench compares against.
	LegacyTuner bool
	// TuneHorizon is the migration amortization horizon in ticks: a
	// proposal migrates only when its modelled per-tick C_D gain over this
	// horizon exceeds the predicted migration cost. 0 means 4x
	// AssessInterval. Ignored under LegacyTuner.
	TuneHorizon float64
	// TuneCooldown is the minimum number of tuning passes between applied
	// migrations per state (default 1). Ignored under LegacyTuner.
	TuneCooldown int
	// DriftSense scales how strongly observed access-pattern churn shrinks
	// the amortization horizon (default 4). Ignored under LegacyTuner.
	DriftSense float64
	// IncrementalMigration spreads index migrations over ticks instead of
	// relocating the whole state at once: each tick at most
	// MigrateStepTuples tuples move, and searches probe both directories
	// until the old one drains. Trades a transient probe overhead for the
	// removal of the stop-the-world maintenance spike.
	IncrementalMigration bool
	// MigrateStepTuples is the per-tick relocation budget when
	// IncrementalMigration is on (default 500).
	MigrateStepTuples int
	// CumulativeAssessment keeps statistics across tuning passes instead
	// of resetting each window. Under drift, stale mass dilutes the new
	// epoch's patterns and slows adaptation — ablation A5 quantifies it.
	CumulativeAssessment bool
	// AdaptiveBudget sizes each state's total IC bits to its live tuple
	// count (≈ log2(len)+2, capped by BitBudget) at every tuning pass
	// instead of always spending the full fixed budget. Oversized
	// directories waste memory and wildcard fan-out on small states;
	// undersized ones crowd buckets on large states.
	AdaptiveBudget bool
	// ContentRouting switches the router to content-based routing
	// (per-value-region selectivity estimates, Bizarro et al.): routing
	// decisions then depend on each composite's actual attribute values,
	// which pays off under value skew — ablation A6 quantifies it.
	ContentRouting bool
	// SampleEvery is the metrics sampling period in ticks.
	SampleEvery int64
	// Durable, when non-nil, makes the run recoverable: at every quiescent
	// DurableEvery boundary (backlog empty) the engine persists a full
	// checkpoint — each state's retained window and index configuration,
	// plus a run record with the cumulative counters — and engine.Recover
	// can rebuild the run from the newest one. Requires the internal
	// generator (Source must be nil): recovery rolls the run back to the
	// checkpoint boundary and replays forward deterministically, so the
	// workload source must be regenerable.
	Durable storage.CheckpointStore
	// DurableEvery is the checkpoint cadence in ticks (default 1 when
	// Durable is set). Boundaries with a non-empty backlog are skipped —
	// a checkpoint is only exact when the tick's work has fully drained —
	// so a CPU-starved run checkpoints at the next quiescent boundary.
	DurableEvery int64
	// CrashAfterTicks, when positive, kills the run at the boundary after
	// that many completed ticks (EndCrashed), modelling a whole-process
	// death for the crash/recover tests and the chaos harness. Requires
	// Durable. CrashAfterTicks == N crashes after tick N-1's boundary work,
	// checkpoint included.
	CrashAfterTicks int64
	// OnResult, when set, receives every emitted join result with the tick
	// it was produced at — the hook the aggregation layer (internal/agg)
	// and custom consumers attach to. The composite is shared; consumers
	// must not mutate it.
	OnResult func(c *tuple.Composite, tick int64)
}

// DefaultRunConfig returns the Figure 6/7 workload configuration. The
// magnitudes are calibrated so that a well-tuned AMRI run uses roughly half
// the per-tick CPU budget, leaving the baselines' extra maintenance and
// scan work to overflow into backlog the way the paper reports.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Profile:        stream.DriftProfile(),
		Seed:           1,
		MaxTicks:       1800, // 30 virtual minutes
		WarmupTicks:    180,  // scaled-down 15-minute quasi training
		AssessInterval: 30,
		Theta:          0.04,
		Epsilon:        0.005,
		BitBudget:      12,
		DenseLimit:     16,
		CPUBudget:      70000,
		MemCap:         32 << 20,
		Costs:          sim.DefaultCosts(),
		Explore:        0.04,
		ExploreBurst:   0.12,
		BurstTicks:     25,
		MinGain:        0.02,
		SampleEvery:    10,
	}
}

// Validate rejects unusable configurations.
func (c *RunConfig) Validate() error {
	if c.MaxTicks <= 0 {
		return fmt.Errorf("engine: MaxTicks must be positive")
	}
	if c.WarmupTicks < 0 || c.WarmupTicks >= c.MaxTicks {
		return fmt.Errorf("engine: warmup %d outside run horizon %d", c.WarmupTicks, c.MaxTicks)
	}
	if c.AssessInterval <= 0 {
		return fmt.Errorf("engine: AssessInterval must be positive")
	}
	if c.Theta <= 0 || c.Theta >= 1 || c.Epsilon <= 0 || c.Epsilon >= c.Theta {
		return fmt.Errorf("engine: need 0 < epsilon < theta < 1")
	}
	if c.BitBudget <= 0 || c.BitBudget > 64 {
		return fmt.Errorf("engine: BitBudget %d out of range", c.BitBudget)
	}
	if c.CPUBudget <= 0 {
		return fmt.Errorf("engine: CPUBudget must be positive")
	}
	if c.SoftMemRatio < 0 || c.SoftMemRatio >= 1 {
		return fmt.Errorf("engine: SoftMemRatio %v outside [0, 1)", c.SoftMemRatio)
	}
	if c.SampleEvery <= 0 {
		return fmt.Errorf("engine: SampleEvery must be positive")
	}
	if c.DurableEvery < 0 {
		return fmt.Errorf("engine: DurableEvery must be non-negative")
	}
	if c.CrashAfterTicks < 0 {
		return fmt.Errorf("engine: CrashAfterTicks must be non-negative")
	}
	if c.CrashAfterTicks > 0 && c.Durable == nil {
		return fmt.Errorf("engine: CrashAfterTicks requires Durable — a crash without a store loses the run")
	}
	if c.Durable != nil && c.Source != nil {
		return fmt.Errorf("engine: Durable requires the internal generator; an external Source cannot be replayed on recovery")
	}
	return c.Profile.Validate()
}

// ParseSystem resolves a contender name: "amri" (CDIA-highest),
// "amri-sria", "amri-csria", "amri-dia", "amri-cdia-r", "static", "scan",
// or "hash-K" for K access modules.
func ParseSystem(s string) (System, error) {
	switch s {
	case "amri":
		return AMRI(AssessCDIAHighest), nil
	case "amri-cdia-r":
		return AMRI(AssessCDIARandom), nil
	case "amri-sria":
		return AMRI(AssessSRIA), nil
	case "amri-dia":
		return AMRI(AssessDIA), nil
	case "amri-csria":
		return AMRI(AssessCSRIA), nil
	case "static":
		return StaticBitmap(), nil
	case "scan":
		return ScanSystem(), nil
	}
	if rest, ok := strings.CutPrefix(s, "hash-"); ok {
		if k, err := strconv.Atoi(rest); err == nil && k > 0 {
			return HashSystem(k), nil
		}
	}
	return System{}, fmt.Errorf("engine: unknown system %q", s)
}
