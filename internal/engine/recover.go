package engine

// Whole-engine crash recovery. The deterministic engine's durability model
// is rollback-replay: at every quiescent DurableEvery boundary the run
// persists each state's retained window (in deterministic timestamp order)
// and index configuration plus a run record with the cumulative counters;
// Recover rebuilds the states from the newest checkpoint, fast-forwards the
// seeded generator past the consumed ticks, and replays forward. Everything
// regenerable is regenerated rather than persisted — arrivals come back out
// of the generator, and learned statistics (router estimates, assessor
// tables, in-flight incremental migrations) rebuild from live traffic, the
// same reconstructibility argument the degrade path already makes. With the
// CPU budget ample enough that every tick drains, the recovered result set
// is identical to the uncrashed run's; constrained-CPU runs recover with the
// same guarantees but per-segment cost accounting.

import (
	"encoding/binary"
	"fmt"

	"amri/internal/metrics"
	"amri/internal/storage"
	"amri/internal/tuple"
)

// engineWALRunRecord is the engine WAL's only record kind: one cumulative
// counter snapshot per persisted boundary.
const engineWALRunRecord byte = 1

// engineCkptVersion guards the per-state checkpoint wire format.
const engineCkptVersion byte = 1

// runRecord snapshots the run's cumulative accounting at a durable tick
// boundary. Probes and retunes are advisory (the replayed segment may route
// and tune differently); results and the degradation counters are exact.
type runRecord struct {
	Tick            int64
	Results         uint64
	Probes          uint64
	Retunes         int64
	ShedTasks       uint64
	DegradedTicks   int64
	WatermarkMisses int64
}

func (r *runRecord) encode() []byte {
	buf := make([]byte, 0, 1+7*8)
	buf = append(buf, engineWALRunRecord)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
	buf = binary.LittleEndian.AppendUint64(buf, r.Results)
	buf = binary.LittleEndian.AppendUint64(buf, r.Probes)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Retunes))
	buf = binary.LittleEndian.AppendUint64(buf, r.ShedTasks)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.DegradedTicks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.WatermarkMisses))
	return buf
}

func decodeRunRecord(buf []byte) (*runRecord, error) {
	if len(buf) != 1+7*8 || buf[0] != engineWALRunRecord {
		return nil, fmt.Errorf("engine: malformed run record (%d bytes)", len(buf))
	}
	return &runRecord{
		Tick:            int64(binary.LittleEndian.Uint64(buf[1:9])),
		Results:         binary.LittleEndian.Uint64(buf[9:17]),
		Probes:          binary.LittleEndian.Uint64(buf[17:25]),
		Retunes:         int64(binary.LittleEndian.Uint64(buf[25:33])),
		ShedTasks:       binary.LittleEndian.Uint64(buf[33:41]),
		DegradedTicks:   int64(binary.LittleEndian.Uint64(buf[41:49])),
		WatermarkMisses: int64(binary.LittleEndian.Uint64(buf[49:57])),
	}, nil
}

// stateCheckpoint is one state's durable snapshot: its retained tuples in
// ascending timestamp order and, for bit-index states, the tuned directory
// configuration they should be re-indexed under.
type stateCheckpoint struct {
	State   int
	CfgBits []uint8 // nil for non-bit backends
	Tuples  []*tuple.Tuple
}

func (c *stateCheckpoint) encode() []byte {
	buf := make([]byte, 0, 16+len(c.CfgBits)+64*len(c.Tuples))
	buf = append(buf, engineCkptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.State))
	if c.CfgBits != nil {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.CfgBits)))
		buf = append(buf, c.CfgBits...)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Tuples)))
	for _, t := range c.Tuples {
		buf = tuple.AppendTuple(buf, t)
	}
	return buf
}

func decodeStateCheckpoint(buf []byte) (*stateCheckpoint, error) {
	if len(buf) < 1+4+1 || buf[0] != engineCkptVersion {
		return nil, fmt.Errorf("engine: malformed state checkpoint (%d bytes)", len(buf))
	}
	c := &stateCheckpoint{State: int(binary.LittleEndian.Uint32(buf[1:5]))}
	hasCfg := buf[5]
	buf = buf[6:]
	if hasCfg != 0 {
		if len(buf) < 2 {
			return nil, fmt.Errorf("engine: truncated checkpoint config length")
		}
		nbits := int(binary.LittleEndian.Uint16(buf[:2]))
		buf = buf[2:]
		if len(buf) < nbits {
			return nil, fmt.Errorf("engine: truncated checkpoint config")
		}
		c.CfgBits = append([]uint8(nil), buf[:nbits]...)
		buf = buf[nbits:]
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("engine: truncated checkpoint tuple count")
	}
	ntuples := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	c.Tuples = make([]*tuple.Tuple, 0, ntuples)
	for i := 0; i < ntuples; i++ {
		t, rest, err := tuple.DecodeTuple(buf)
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint tuple %d: %w", i, err)
		}
		buf = rest
		c.Tuples = append(c.Tuples, t)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("engine: %d trailing bytes in state checkpoint", len(buf))
	}
	return c, nil
}

// durableEvery resolves the checkpoint cadence (default 1).
func (e *Engine) durableEvery() int64 {
	if e.run.DurableEvery > 0 {
		return e.run.DurableEvery
	}
	return 1
}

// persistCheckpoint writes every state's snapshot and the boundary's run
// record, then syncs. A store failure latches into durableErr and disables
// further persistence — the run continues, but Recover will resume from the
// last boundary that made it out.
func (e *Engine) persistCheckpoint(tick int64) {
	if e.durableErr != nil {
		return
	}
	for s, st := range e.stems {
		ck := stateCheckpoint{State: s}
		if bs, ok := st.Store().(storage.BitStore); ok {
			ck.CfgBits = append([]uint8(nil), bs.Config().Bits...)
		}
		ck.Tuples = make([]*tuple.Tuple, 0, st.Len())
		st.EachRetained(func(t *tuple.Tuple) {
			ck.Tuples = append(ck.Tuples, t)
		})
		if err := e.run.Durable.SaveCheckpoint(s, ck.encode()); err != nil {
			e.durableErr = err
			return
		}
	}
	rec := runRecord{
		Tick:            tick,
		Results:         e.results,
		Probes:          e.probes,
		Retunes:         int64(e.retunes),
		ShedTasks:       e.shedTasks,
		DegradedTicks:   e.degradedTicks,
		WatermarkMisses: e.watermarkMisses,
	}
	if err := e.run.Durable.AppendWAL(rec.encode()); err != nil {
		e.durableErr = err
		return
	}
	if err := e.run.Durable.Sync(); err != nil {
		e.durableErr = err
	}
}

// DurableErr reports the first durable-store failure the run hit, if any;
// the run itself continues past store failures (durability degrades, the
// computation does not).
func (e *Engine) DurableErr() error { return e.durableErr }

// Recover rebuilds a crashed durable run from its store and executes the
// remaining ticks. run must be the same RunConfig the crashed run was given
// (store included) with CrashAfterTicks adjusted or cleared as desired —
// leaving a later crash point in place crashes again at it. The returned
// result's ResumedTick records where the run picked up; TotalResults,
// Retunes and the degradation counters continue the crashed run's.
func Recover(run RunConfig, sys System) (*metrics.RunResult, error) {
	if run.Durable == nil {
		return nil, fmt.Errorf("engine: Recover requires RunConfig.Durable")
	}
	e, err := New(run, sys)
	if err != nil {
		return nil, err
	}
	resume, err := e.restoreFromStore()
	if err != nil {
		return nil, err
	}
	return e.runFrom(resume), nil
}

// restoreFromStore rebuilds the engine from the newest durable boundary and
// returns the tick to resume at.
func (e *Engine) restoreFromStore() (int64, error) {
	var last *runRecord
	err := e.run.Durable.ReplayWAL(func(rec []byte) error {
		r, err := decodeRunRecord(rec)
		if err != nil {
			return err
		}
		last = r
		return nil
	})
	if err != nil {
		return 0, err
	}
	if last == nil {
		return 0, fmt.Errorf("engine: no durable run record to resume from")
	}
	if last.Tick+1 > e.run.MaxTicks {
		return 0, fmt.Errorf("engine: durable state runs through tick %d but the config stops at %d", last.Tick, e.run.MaxTicks)
	}

	e.results = last.Results
	e.probes = last.Probes
	e.retunes = int(last.Retunes)
	e.shedTasks = last.ShedTasks
	e.degradedTicks = last.DegradedTicks
	e.watermarkMisses = last.WatermarkMisses

	for s, st := range e.stems {
		blob, ok, err := e.run.Durable.LoadCheckpoint(s)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("engine: state %d has no checkpoint", s)
		}
		ck, err := decodeStateCheckpoint(blob)
		if err != nil {
			return 0, err
		}
		if ck.State != s {
			return 0, fmt.Errorf("engine: checkpoint slot %d holds state %d's snapshot", s, ck.State)
		}
		if bs, isBit := st.Store().(storage.BitStore); isBit && ck.CfgBits != nil {
			cfg := bs.Config()
			cfg.Bits = ck.CfgBits
			if !cfg.Equal(bs.Config()) {
				if _, err := bs.Migrate(cfg); err != nil {
					return 0, err
				}
			}
		}
		for _, t := range ck.Tuples {
			st.Insert(t)
		}
	}

	// The rebuild charged real insert work to the fresh clock; forgive it so
	// the first resumed tick starts with its full CPU grant, like the
	// uncrashed run's tick would have. (The cost is still visible in the
	// clock's maintenance category.)
	e.allowance = e.clock.Spent()

	// Fast-forward the seeded generator past the consumed ticks: it is
	// stateful (per-stream rngs, sequence numbers, arrival stamps), so
	// replaying and discarding puts it exactly where the crashed run's
	// source stood.
	resume := last.Tick + 1
	for t := int64(0); t < resume; t++ {
		e.src.Tick(t)
	}
	e.curTick = resume

	// Re-apply the warmup transition if it happened before the crash: the
	// one-shot tuning pass already ran, and non-adapting contenders froze.
	if resume >= e.run.WarmupTicks {
		e.warmupDone = true
		if !e.sys.Adaptive {
			for _, st := range e.stems {
				st.Assessor = nil
			}
		}
	}
	return resume, nil
}
