package metrics

import (
	"strings"
	"testing"
)

func sampleRun(name string, end EndReason) *RunResult {
	return &RunResult{
		Name: name,
		Points: []Point{
			{Tick: 0, Results: 0, MemBytes: 100},
			{Tick: 10, Results: 50, MemBytes: 200},
			{Tick: 20, Results: 120, MemBytes: 300},
		},
		End: end, EndTick: 20, TotalResults: 120, PeakMemBytes: 300,
	}
}

func TestAt(t *testing.T) {
	r := sampleRun("x", EndCompleted)
	cases := []struct {
		tick int64
		want uint64
	}{{-1, 0}, {0, 0}, {9, 0}, {10, 50}, {15, 50}, {20, 120}, {100, 120}}
	for _, c := range cases {
		if got := r.At(c.tick); got != c.want {
			t.Errorf("At(%d) = %d, want %d", c.tick, got, c.want)
		}
	}
}

func TestSummaryAndTable(t *testing.T) {
	a := sampleRun("amri", EndCompleted)
	b := sampleRun("hash-3", EndOOM)
	if !strings.Contains(a.Summary(), "amri") || !strings.Contains(a.Summary(), "completed") {
		t.Fatalf("Summary = %q", a.Summary())
	}
	tbl := Table([]*RunResult{a, b})
	for _, frag := range []string{"system", "amri", "hash-3", "out-of-memory"} {
		if !strings.Contains(tbl, frag) {
			t.Errorf("Table missing %q:\n%s", frag, tbl)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:     "512B",
		2 << 10: "2.0KiB",
		3 << 20: "3.0MiB",
		1 << 30: "1.0GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestChart(t *testing.T) {
	a := sampleRun("a", EndCompleted)
	b := sampleRun("b", EndOOM)
	b.Points[2].Results = 60
	b.TotalResults = 60
	ch := Chart([]*RunResult{a, b}, 40, 8)
	if !strings.Contains(ch, "A=a") || !strings.Contains(ch, "B=b") {
		t.Fatalf("chart legend missing:\n%s", ch)
	}
	if !strings.Contains(ch, "A") {
		t.Fatal("chart body missing marks")
	}
	// Degenerate inputs do not panic and return something sane.
	if got := Chart(nil, 40, 8); got != "" {
		t.Fatalf("empty chart = %q", got)
	}
	if got := Chart([]*RunResult{{Name: "e"}}, 40, 8); !strings.Contains(got, "no data") {
		t.Fatalf("no-data chart = %q", got)
	}
}

func TestSortByResults(t *testing.T) {
	a := sampleRun("small", EndCompleted)
	a.TotalResults = 10
	b := sampleRun("big", EndCompleted)
	b.TotalResults = 99
	runs := []*RunResult{a, b}
	SortByResults(runs)
	if runs[0].Name != "big" {
		t.Fatalf("sorted order wrong: %s first", runs[0].Name)
	}
}

func TestWriteCSV(t *testing.T) {
	a := sampleRun("sysA", EndCompleted)
	var buf strings.Builder
	if err := WriteCSV(&buf, []*RunResult{a}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "system,tick,results,memBytes,backlog\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "sysA,10,50,200,0") {
		t.Fatalf("missing row: %q", out)
	}
	if got := strings.Count(out, "\n"); got != 4 { // header + 3 points
		t.Fatalf("rows = %d", got)
	}
}
