// Package metrics collects and renders what the paper's figures plot:
// cumulative output tuples (throughput) against virtual time, alongside
// memory usage and the run's end condition.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one sample of a run.
type Point struct {
	// Tick is the virtual time in ticks (seconds).
	Tick int64
	// Results is the cumulative number of join results produced.
	Results uint64
	// MemBytes is the simulated resident set at the sample.
	MemBytes int
	// Backlog is the number of queued work items at the sample.
	Backlog int
}

// EndReason states why a run stopped.
type EndReason string

const (
	// EndCompleted means the run reached its configured horizon.
	EndCompleted EndReason = "completed"
	// EndOOM means the simulated resident set exceeded the memory cap —
	// the paper's "ran out of memory" terminations.
	EndOOM EndReason = "out-of-memory"
	// EndDegraded means the run reached its horizon but only by shedding
	// work under memory pressure (the soft-watermark degradation path):
	// the output is complete in time but not in content.
	EndDegraded EndReason = "degraded"
	// EndCrashed means a scheduled crash point killed the run at a tick
	// boundary; the durable store holds everything needed for Recover to
	// resume it.
	EndCrashed EndReason = "crashed"
)

// RunResult is the full record of one system's run.
type RunResult struct {
	// Name labels the contender ("AMRI/CDIA-highest", "hash-3", ...).
	Name string
	// Points is the sampled series in tick order.
	Points []Point
	// End is why and when the run stopped.
	End     EndReason
	EndTick int64
	// ResumedTick is the tick a recovered run resumed at (0 for a run
	// started from scratch). Cumulative counters (TotalResults, Retunes,
	// Probes) continue the crashed run's; cost and latency are per-segment.
	ResumedTick int64
	// TotalResults is the cumulative throughput at the end.
	TotalResults uint64
	// PeakMemBytes is the largest sampled resident set.
	PeakMemBytes int
	// Retunes counts index migrations performed.
	Retunes int
	// Probes counts search requests executed.
	Probes uint64
	// CostUnits is total simulated CPU work.
	CostUnits float64
	// FinalConfigs records each state's index configuration at the end of
	// the run (bit-index contenders) or its access-module patterns (hash
	// contenders) — what the tuner converged to.
	FinalConfigs []string
	// Latency distributes the result latency: ticks between a result's
	// driving tuple arriving and the result being emitted. Backlogged
	// systems deliver late (and, past the window, not at all).
	Latency LatencySummary
	// CostBreakdown gives each cost category's share of CostUnits
	// (maintain / search / assess / route) — where the CPU actually went.
	CostBreakdown map[string]float64
	// ShedTasks counts queued probe tasks dropped by soft-watermark
	// degradation, and DegradedTicks the ticks that ended over the soft
	// watermark (both zero unless SoftMemRatio is configured).
	ShedTasks     uint64
	DegradedTicks int64
	// WatermarkMisses counts degrade passes that shed every
	// reconstructible byte and still ended over the soft watermark —
	// resident data alone exceeds it, so degradation cannot help and only
	// the hard cap remains between the system and OOM.
	WatermarkMisses int64
	// Tuner aggregates the retuning controllers' what-if accounting across
	// the run's states.
	Tuner TunerSummary
}

// TunerSummary mirrors the tuner controllers' decision counters without
// importing them (metrics stays dependency-free). Passes counts tuning
// passes; Migrations, CooldownHolds, FlipFlopHolds and Uneconomical
// partition the passes where a worthwhile candidate existed; the cost pair
// compares predicted against realized migration cost in cost-model units.
type TunerSummary struct {
	Passes           int
	Migrations       int
	CooldownHolds    int
	FlipFlopHolds    int
	Uneconomical     int
	PredictedMigCost float64
	RealizedMigCost  float64
	Completed        int
	Aborted          int
}

// Holds returns the passes where thrash protection held the configuration.
func (t TunerSummary) Holds() int { return t.CooldownHolds + t.FlipFlopHolds + t.Uneconomical }

// String renders the summary for run reports.
func (t TunerSummary) String() string {
	return fmt.Sprintf("tuner passes=%d migrations=%d holds=%d (cooldown=%d flipflop=%d uneconomical=%d) predCost=%.0f realCost=%.0f",
		t.Passes, t.Migrations, t.Holds(), t.CooldownHolds, t.FlipFlopHolds, t.Uneconomical,
		t.PredictedMigCost, t.RealizedMigCost)
}

// LatencySummary is a compact latency distribution.
type LatencySummary struct {
	Count    uint64
	MeanTick float64
	P50Tick  int64
	P99Tick  int64
	MaxTick  int64
}

// String renders the summary.
func (l LatencySummary) String() string {
	if l.Count == 0 {
		return "latency: n/a"
	}
	return fmt.Sprintf("latency mean=%.1f p50=%d p99=%d max=%d ticks",
		l.MeanTick, l.P50Tick, l.P99Tick, l.MaxTick)
}

// SummarizeLatencies builds a LatencySummary from raw per-result latencies
// (in ticks); the input slice is sorted in place.
func SummarizeLatencies(lat []int64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum int64
	for _, v := range lat {
		sum += v
	}
	idx := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return LatencySummary{
		Count:    uint64(len(lat)),
		MeanTick: float64(sum) / float64(len(lat)),
		P50Tick:  idx(0.50),
		P99Tick:  idx(0.99),
		MaxTick:  lat[len(lat)-1],
	}
}

// At returns the cumulative results at or before the tick (0 before the
// first sample).
func (r *RunResult) At(tick int64) uint64 {
	var res uint64
	for _, p := range r.Points {
		if p.Tick > tick {
			break
		}
		res = p.Results
	}
	return res
}

// Summary renders a one-line digest.
func (r *RunResult) Summary() string {
	return fmt.Sprintf("%-24s results=%-10d end=%s@%ds peakMem=%s retunes=%d",
		r.Name, r.TotalResults, r.End, r.EndTick, FormatBytes(r.PeakMemBytes), r.Retunes)
}

// FormatBytes renders a byte count human-readably.
func FormatBytes(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Table renders a fixed-width comparison table of several runs, one row per
// contender, like the paper's result summaries.
func Table(runs []*RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %14s %10s %12s %8s %8s %9s\n",
		"system", "results", "end", "endTick", "peakMem", "retunes", "p99lat", "maint%")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 106))
	for _, r := range runs {
		maint := "-"
		if f, ok := r.CostBreakdown["maintain"]; ok {
			maint = fmt.Sprintf("%.0f%%", 100*f)
		}
		p99 := "-"
		if r.Latency.Count > 0 {
			p99 = fmt.Sprintf("%d", r.Latency.P99Tick)
		}
		fmt.Fprintf(&b, "%-26s %12d %14s %10d %12s %8d %8s %9s\n",
			r.Name, r.TotalResults, r.End, r.EndTick, FormatBytes(r.PeakMemBytes), r.Retunes, p99, maint)
	}
	return b.String()
}

// Chart renders an ASCII chart of cumulative results over time for several
// runs — the shape of the paper's Figures 6 and 7. Each contender gets a
// letter; at each time column the letter prints at its cumulative-results
// height.
func Chart(runs []*RunResult, width, height int) string {
	if len(runs) == 0 || width < 10 || height < 4 {
		return ""
	}
	var maxTick int64
	var maxRes uint64
	for _, r := range runs {
		for _, p := range r.Points {
			if p.Tick > maxTick {
				maxTick = p.Tick
			}
			if p.Results > maxRes {
				maxRes = p.Results
			}
		}
	}
	if maxTick == 0 || maxRes == 0 {
		return "(no data)\n"
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ri, r := range runs {
		mark := byte('A' + ri%26)
		for col := 0; col < width; col++ {
			tick := int64(float64(col) / float64(width-1) * float64(maxTick))
			if tick > r.EndTick {
				continue
			}
			res := r.At(tick)
			row := height - 1 - int(float64(res)/float64(maxRes)*float64(height-1))
			if row < 0 {
				row = 0
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cumulative results (max %d) over %d ticks\n", maxRes, maxTick)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n ")
	for ri, r := range runs {
		fmt.Fprintf(&b, "%c=%s ", 'A'+ri%26, r.Name)
	}
	b.WriteString("\n")
	return b.String()
}

// SortByResults orders runs by descending total results (stable for ties).
func SortByResults(runs []*RunResult) {
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].TotalResults > runs[j].TotalResults })
}

// WriteCSV emits the sampled series of several runs as CSV with columns
// system,tick,results,memBytes,backlog — ready for external plotting of the
// paper's figures.
func WriteCSV(w io.Writer, runs []*RunResult) error {
	if _, err := fmt.Fprintln(w, "system,tick,results,memBytes,backlog"); err != nil {
		return err
	}
	for _, r := range runs {
		for _, p := range r.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d\n",
				r.Name, p.Tick, p.Results, p.MemBytes, p.Backlog); err != nil {
				return err
			}
		}
	}
	return nil
}
