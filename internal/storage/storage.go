// Package storage defines the contract a state's storage backend satisfies
// and provides the two simplest implementations: the no-index scan store
// and the adapter over the bit-address index. The multi-hash-index baseline
// lives in internal/hashindex.
package storage

import (
	"amri/internal/bitindex"
	"amri/internal/query"
	"amri/internal/tuple"
)

// Store is what a STeM operator needs from its state storage. Probe visits
// candidate tuples for the access pattern — the operator still applies the
// join predicates to each candidate. All operations report the work done in
// bitindex.Stats units so the simulation can charge for it.
type Store interface {
	Insert(t *tuple.Tuple) bitindex.Stats
	Delete(t *tuple.Tuple) (bitindex.Stats, bool)
	Probe(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats
	Len() int
	MemBytes() int
}

// ScanStore stores tuples in arrival order and answers every probe with a
// full scan: the degenerate baseline (and what a hash-index state falls
// back to when no index suits a request).
type ScanStore struct {
	tuples     []*tuple.Tuple
	pos        map[*tuple.Tuple]int
	tupleBytes int
}

// NewScanStore returns an empty scan store.
func NewScanStore() *ScanStore {
	return &ScanStore{pos: make(map[*tuple.Tuple]int)}
}

// Insert appends the tuple.
func (s *ScanStore) Insert(t *tuple.Tuple) bitindex.Stats {
	s.pos[t] = len(s.tuples)
	s.tuples = append(s.tuples, t)
	s.tupleBytes += t.MemBytes()
	return bitindex.Stats{}
}

// Delete removes the tuple by pointer identity via swap-remove.
func (s *ScanStore) Delete(t *tuple.Tuple) (bitindex.Stats, bool) {
	i, ok := s.pos[t]
	if !ok {
		return bitindex.Stats{}, false
	}
	last := len(s.tuples) - 1
	s.tuples[i] = s.tuples[last]
	s.pos[s.tuples[i]] = i
	s.tuples[last] = nil
	s.tuples = s.tuples[:last]
	delete(s.pos, t)
	s.tupleBytes -= t.MemBytes()
	return bitindex.Stats{}, true
}

// Probe scans everything regardless of the pattern.
func (s *ScanStore) Probe(_ query.Pattern, _ []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats {
	var st bitindex.Stats
	st.Buckets = 1
	for _, t := range s.tuples {
		st.Tuples++
		if !visit(t) {
			break
		}
	}
	return st
}

// Len returns the number of stored tuples.
func (s *ScanStore) Len() int { return len(s.tuples) }

// MemBytes returns the simulated resident size.
func (s *ScanStore) MemBytes() int {
	return 64 + 8*len(s.tuples) + 48*len(s.pos) + s.tupleBytes
}

// BitStore adapts a bit-address index to the Store interface.
type BitStore struct {
	*bitindex.Index
}

// NewBitStore wraps the index.
func NewBitStore(ix *bitindex.Index) BitStore { return BitStore{Index: ix} }

// Probe delegates to the index's wildcard bucket search.
func (b BitStore) Probe(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats {
	return b.Search(p, vals, visit)
}

// ShardedBitStore adapts the lock-striped bit-address index to the Store
// interface. Unlike the other stores it is safe for concurrent use — it is
// what a STeM backs its state with when operators probe from a worker pool.
type ShardedBitStore struct {
	*bitindex.ShardedIndex
}

// NewShardedBitStore wraps the sharded index.
func NewShardedBitStore(ix *bitindex.ShardedIndex) ShardedBitStore {
	return ShardedBitStore{ShardedIndex: ix}
}

// Probe delegates to the sharded index's wildcard bucket search.
func (b ShardedBitStore) Probe(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats {
	return b.Search(p, vals, visit)
}

var (
	_ Store = (*ScanStore)(nil)
	_ Store = BitStore{}
	_ Store = ShardedBitStore{}
)
