package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// stores returns one fresh instance of every CheckpointStore implementation
// so the semantic tests run against both; the cleanup closes file handles.
func stores(t *testing.T) map[string]CheckpointStore {
	t.Helper()
	fs, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]CheckpointStore{
		"mem":  NewMemStore(),
		"file": fs,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := st.LoadCheckpoint(3); err != nil || ok {
				t.Fatalf("LoadCheckpoint on empty store: ok=%v err=%v", ok, err)
			}
			blob := []byte("first")
			if err := st.SaveCheckpoint(3, blob); err != nil {
				t.Fatalf("SaveCheckpoint: %v", err)
			}
			blob[0] = 'X' // the store must have copied (or persisted) it
			got, ok, err := st.LoadCheckpoint(3)
			if err != nil || !ok {
				t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(got, []byte("first")) {
				t.Fatalf("checkpoint = %q, want %q", got, "first")
			}
			// Replacement is total: the new blob fully supersedes the old.
			if err := st.SaveCheckpoint(3, []byte("second-longer")); err != nil {
				t.Fatalf("SaveCheckpoint replace: %v", err)
			}
			got, _, _ = st.LoadCheckpoint(3)
			if !bytes.Equal(got, []byte("second-longer")) {
				t.Fatalf("replaced checkpoint = %q", got)
			}
			// Ops are independent slots.
			if _, ok, _ := st.LoadCheckpoint(4); ok {
				t.Fatal("op 4 checkpoint should not exist")
			}
		})
	}
}

func TestWALAppendReplayReset(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var want [][]byte
			for i := 0; i < 100; i++ {
				rec := []byte(fmt.Sprintf("record-%03d", i))
				want = append(want, rec)
				if err := st.AppendWAL(rec); err != nil {
					t.Fatalf("AppendWAL: %v", err)
				}
			}
			if err := st.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			var got [][]byte
			if err := st.ReplayWAL(func(rec []byte) error {
				got = append(got, append([]byte(nil), rec...))
				return nil
			}); err != nil {
				t.Fatalf("ReplayWAL: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
			// visit errors propagate and stop the walk.
			stop := fmt.Errorf("stop")
			calls := 0
			if err := st.ReplayWAL(func([]byte) error {
				calls++
				return stop
			}); err != stop {
				t.Fatalf("ReplayWAL error = %v, want stop", err)
			}
			if calls != 1 {
				t.Fatalf("visit called %d times after error, want 1", calls)
			}
			if err := st.ResetWAL(); err != nil {
				t.Fatalf("ResetWAL: %v", err)
			}
			n := 0
			st.ReplayWAL(func([]byte) error { n++; return nil })
			if n != 0 {
				t.Fatalf("replay after reset visited %d records", n)
			}
		})
	}
}

func TestFileStoreReopenSurvives(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	fs.SaveCheckpoint(0, []byte("op0"))
	fs.AppendWAL([]byte("a"))
	fs.AppendWAL([]byte("b"))
	if err := fs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.AppendWAL([]byte("late")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}

	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	blob, ok, err := fs2.LoadCheckpoint(0)
	if err != nil || !ok || !bytes.Equal(blob, []byte("op0")) {
		t.Fatalf("checkpoint after reopen: %q ok=%v err=%v", blob, ok, err)
	}
	var got []string
	fs2.ReplayWAL(func(rec []byte) error { got = append(got, string(rec)); return nil })
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("wal after reopen = %v", got)
	}
	// Appends continue after the existing records, not over them.
	fs2.AppendWAL([]byte("c"))
	got = got[:0]
	fs2.ReplayWAL(func(rec []byte) error { got = append(got, string(rec)); return nil })
	if len(got) != 3 || got[2] != "c" {
		t.Fatalf("wal after reopen+append = %v", got)
	}
}

func TestFileStoreTornTailTruncation(t *testing.T) {
	cases := []struct {
		name string
		tear func([]byte) []byte // mutate the raw wal bytes
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0x03, 0x00) }},
		{"partial payload", func(b []byte) []byte {
			frame := make([]byte, 8)
			binary.LittleEndian.PutUint32(frame[0:4], 100) // claims 100 payload bytes
			binary.LittleEndian.PutUint32(frame[4:8], 0)
			return append(append(b, frame...), []byte("only-a-few")...)
		}},
		{"crc mismatch", func(b []byte) []byte {
			payload := []byte("corrupt-me")
			frame := make([]byte, 8+len(payload))
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], 0xdeadbeef)
			copy(frame[8:], payload)
			return append(b, frame...)
		}},
		{"absurd length", func(b []byte) []byte {
			frame := make([]byte, 8)
			binary.LittleEndian.PutUint32(frame[0:4], 1<<30)
			return append(b, frame...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs, err := OpenFileStore(dir)
			if err != nil {
				t.Fatalf("OpenFileStore: %v", err)
			}
			fs.AppendWAL([]byte("intact-1"))
			fs.AppendWAL([]byte("intact-2"))
			fs.Close()

			path := filepath.Join(dir, "wal.log")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read wal: %v", err)
			}
			intactLen := len(raw)
			if err := os.WriteFile(path, tc.tear(raw), 0o644); err != nil {
				t.Fatalf("write torn wal: %v", err)
			}

			fs2, err := OpenFileStore(dir)
			if err != nil {
				t.Fatalf("reopen torn: %v", err)
			}
			defer fs2.Close()
			var got []string
			fs2.ReplayWAL(func(rec []byte) error { got = append(got, string(rec)); return nil })
			if len(got) != 2 || got[0] != "intact-1" || got[1] != "intact-2" {
				t.Fatalf("intact prefix after torn-tail open = %v", got)
			}
			// The tail was physically truncated, not just skipped.
			info, err := os.Stat(path)
			if err != nil {
				t.Fatalf("stat wal: %v", err)
			}
			if info.Size() != int64(intactLen) {
				t.Fatalf("wal size after open = %d, want %d (torn tail truncated)", info.Size(), intactLen)
			}
			// New appends land cleanly after the truncated prefix.
			fs2.AppendWAL([]byte("post-recovery"))
			got = got[:0]
			fs2.ReplayWAL(func(rec []byte) error { got = append(got, string(rec)); return nil })
			if len(got) != 3 || got[2] != "post-recovery" {
				t.Fatalf("wal after recovery append = %v", got)
			}
		})
	}
}

func TestFileStoreFsyncBatching(t *testing.T) {
	fs, err := OpenFileStore(t.TempDir(), WithSyncEvery(4))
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	defer fs.Close()
	for i := 0; i < 10; i++ {
		if err := fs.AppendWAL([]byte{byte(i)}); err != nil {
			t.Fatalf("AppendWAL: %v", err)
		}
	}
	// 10 appends with batch 4: two batch syncs fired, 2 records pending.
	fs.mu.Lock()
	pending := fs.unsynced
	fs.mu.Unlock()
	if pending != 2 {
		t.Fatalf("unsynced after 10 appends @4 = %d, want 2", pending)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	fs.mu.Lock()
	pending = fs.unsynced
	fs.mu.Unlock()
	if pending != 0 {
		t.Fatalf("unsynced after Sync = %d, want 0", pending)
	}
	// Batched-but-unsynced records are still replayable from this process.
	fs.AppendWAL([]byte{0xff})
	n := 0
	if err := fs.ReplayWAL(func([]byte) error { n++; return nil }); err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if n != 11 {
		t.Fatalf("replayed %d records, want 11", n)
	}
}

func TestFileStoreCheckpointReplaceLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	defer fs.Close()
	for i := 0; i < 5; i++ {
		if err := fs.SaveCheckpoint(7, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("SaveCheckpoint: %v", err)
		}
	}
	blob, ok, _ := fs.LoadCheckpoint(7)
	if !ok || !bytes.Equal(blob, []byte("v4")) {
		t.Fatalf("checkpoint = %q ok=%v, want v4", blob, ok)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp file %s after save", e.Name())
		}
	}
}

func TestFlakyStoreDropSchedule(t *testing.T) {
	inner := NewMemStore()
	fl := &FlakyStore{CheckpointStore: inner, DropEvery: 3}
	for i := 0; i < 9; i++ {
		if err := fl.AppendWAL([]byte{byte(i)}); err != nil {
			t.Fatalf("AppendWAL: %v", err)
		}
	}
	if got := fl.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3 (every 3rd of 9)", got)
	}
	if got := inner.WALRecords(); got != 6 {
		t.Fatalf("inner records = %d, want 6", got)
	}
	// The survivors are exactly the non-multiples of 3 (1-based).
	var got []byte
	inner.ReplayWAL(func(rec []byte) error { got = append(got, rec[0]); return nil })
	want := []byte{0, 1, 3, 4, 6, 7}
	if !bytes.Equal(got, want) {
		t.Fatalf("surviving records = %v, want %v", got, want)
	}
	// DropEvery <= 1 disables dropping entirely.
	benign := &FlakyStore{CheckpointStore: NewMemStore(), DropEvery: 1}
	for i := 0; i < 5; i++ {
		benign.AppendWAL([]byte{byte(i)})
	}
	if benign.Dropped() != 0 {
		t.Fatalf("DropEvery=1 dropped %d", benign.Dropped())
	}
}
