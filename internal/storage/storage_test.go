package storage

import (
	"testing"
	"testing/quick"

	"amri/internal/bitindex"
	"amri/internal/query"
	"amri/internal/tuple"
)

func TestScanStoreInsertProbeDelete(t *testing.T) {
	s := NewScanStore()
	t1 := tuple.New(0, 1, 0, []tuple.Value{1})
	t2 := tuple.New(0, 2, 0, []tuple.Value{2})
	s.Insert(t1)
	s.Insert(t2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	n := 0
	st := s.Probe(query.PatternOf(0), []tuple.Value{1}, func(*tuple.Tuple) bool { n++; return true })
	if n != 2 || st.Tuples != 2 {
		t.Fatalf("scan store must visit everything: n=%d stats=%d", n, st.Tuples)
	}
	if _, ok := s.Delete(t1); !ok {
		t.Fatal("delete failed")
	}
	if _, ok := s.Delete(t1); ok {
		t.Fatal("double delete succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestScanStoreEarlyStop(t *testing.T) {
	s := NewScanStore()
	for i := 0; i < 10; i++ {
		s.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{1}))
	}
	n := 0
	s.Probe(0, nil, func(*tuple.Tuple) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanStoreMemAccounting(t *testing.T) {
	s := NewScanStore()
	m0 := s.MemBytes()
	tp := tuple.New(0, 1, 0, []tuple.Value{1})
	tp.PayloadBytes = 512
	s.Insert(tp)
	if s.MemBytes()-m0 < 512 {
		t.Fatal("payload not accounted")
	}
	s.Delete(tp)
	if s.MemBytes() != m0 {
		t.Fatal("delete did not release memory")
	}
}

func TestBitStoreAdapter(t *testing.T) {
	ix, err := bitindex.New(bitindex.NewConfig(4, 4), []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var s Store = NewBitStore(ix)
	tp := tuple.New(0, 1, 0, []tuple.Value{3, 9})
	s.Insert(tp)
	found := false
	s.Probe(query.PatternOf(0), []tuple.Value{3, 0}, func(x *tuple.Tuple) bool {
		found = found || x == tp
		return true
	})
	if !found {
		t.Fatal("BitStore probe missed inserted tuple")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive")
	}
}

// Property: after any interleaving of inserts and deletes, Len equals the
// number of live tuples and every live tuple is probe-visible.
func TestScanStoreConsistencyProperty(t *testing.T) {
	f := func(ops []bool) bool {
		s := NewScanStore()
		var live []*tuple.Tuple
		seq := uint64(0)
		for _, ins := range ops {
			if ins || len(live) == 0 {
				tp := tuple.New(0, seq, 0, []tuple.Value{tuple.Value(seq)})
				seq++
				live = append(live, tp)
				s.Insert(tp)
			} else {
				victim := live[len(live)/2]
				live = append(live[:len(live)/2], live[len(live)/2+1:]...)
				if _, ok := s.Delete(victim); !ok {
					return false
				}
			}
		}
		if s.Len() != len(live) {
			return false
		}
		seen := map[*tuple.Tuple]bool{}
		s.Probe(0, nil, func(x *tuple.Tuple) bool { seen[x] = true; return true })
		for _, tp := range live {
			if !seen[tp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
