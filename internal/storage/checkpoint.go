package storage

import (
	"fmt"
	"sync"
)

// CheckpointStore is the durability seam crash recovery stands on: a place
// to persist per-operator checkpoints plus an append-only write-ahead log
// of everything applied since. The contract is deliberately narrow — byte
// payloads in, byte payloads out — so the pipeline owns its own record
// formats and the store owns only framing, integrity and fsync policy.
//
// Durability model (see DESIGN.md §11):
//
//   - SaveCheckpoint atomically replaces operator op's checkpoint; a crash
//     mid-save must leave either the old or the new checkpoint readable,
//     never a torn mix.
//   - AppendWAL appends one record. Records are durable no later than the
//     next Sync; an implementation may batch fsyncs between Syncs, so a
//     crash can lose a suffix of un-synced appends but never reorder or
//     corrupt the prefix.
//   - ReplayWAL visits every intact record in append order. A torn tail
//     (partial final record from a mid-append crash) is silently dropped,
//     exactly once, at open time — it was never acknowledged as durable.
//
// Implementations must be safe for concurrent use: operator serve
// goroutines append concurrently while the source goroutine syncs.
type CheckpointStore interface {
	// SaveCheckpoint durably replaces operator op's checkpoint blob.
	SaveCheckpoint(op int, data []byte) error
	// LoadCheckpoint reads operator op's checkpoint; ok=false means no
	// checkpoint has ever been saved for op.
	LoadCheckpoint(op int) (data []byte, ok bool, err error)
	// AppendWAL appends one record to the write-ahead log.
	AppendWAL(rec []byte) error
	// ReplayWAL visits every intact record in append order. Returning an
	// error from visit stops the replay and propagates the error.
	ReplayWAL(visit func(rec []byte) error) error
	// ResetWAL discards the log (compaction after a covering checkpoint
	// set; recovery itself never calls it).
	ResetWAL() error
	// Sync makes every prior append durable.
	Sync() error
	// Close releases the store; the data stays readable by a re-open.
	Close() error
}

// MemStore is the in-memory CheckpointStore: exact WAL/checkpoint
// semantics with no disk, for tests and for chaos sweeps where the store
// round-trip (not the filesystem) is what is being exercised. The zero
// value is not usable; call NewMemStore.
type MemStore struct {
	mu    sync.Mutex
	ckpts map[int][]byte
	wal   [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{ckpts: make(map[int][]byte)}
}

// SaveCheckpoint replaces op's checkpoint (the blob is copied).
func (m *MemStore) SaveCheckpoint(op int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ckpts[op] = append([]byte(nil), data...)
	return nil
}

// LoadCheckpoint returns a copy of op's checkpoint.
func (m *MemStore) LoadCheckpoint(op int) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.ckpts[op]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

// AppendWAL appends a copy of the record.
func (m *MemStore) AppendWAL(rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wal = append(m.wal, append([]byte(nil), rec...))
	return nil
}

// ReplayWAL visits the records in append order.
func (m *MemStore) ReplayWAL(visit func(rec []byte) error) error {
	m.mu.Lock()
	wal := m.wal
	m.mu.Unlock()
	for _, rec := range wal {
		if err := visit(rec); err != nil {
			return err
		}
	}
	return nil
}

// ResetWAL discards the log.
func (m *MemStore) ResetWAL() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wal = nil
	return nil
}

// Sync is a no-op: memory is always "durable" within the process.
func (m *MemStore) Sync() error { return nil }

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// WALRecords returns how many records the log holds (test accounting).
func (m *MemStore) WALRecords() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.wal)
}

var _ CheckpointStore = (*MemStore)(nil)

// FlakyStore wraps a CheckpointStore and silently drops every Nth WAL
// append — a deterministic model of a broken durability layer (a disk that
// acknowledges writes it loses). It exists so the chaos harness has a real,
// reproducible invariant violation to find and minimize: with a flaky store
// the recovered state misses tuples, and the digest/conservation checks
// must catch it. DropEvery <= 1 drops nothing.
type FlakyStore struct {
	CheckpointStore
	// DropEvery drops the k-th append for every k divisible by DropEvery
	// (1-based), so DropEvery=10 loses 10% of the log.
	DropEvery int

	mu      sync.Mutex
	appends int
	dropped int
}

// AppendWAL counts the append and drops it when the schedule says so.
func (f *FlakyStore) AppendWAL(rec []byte) error {
	f.mu.Lock()
	f.appends++
	drop := f.DropEvery > 1 && f.appends%f.DropEvery == 0
	if drop {
		f.dropped++
	}
	f.mu.Unlock()
	if drop {
		return nil // acknowledged, never written: the lying disk
	}
	return f.CheckpointStore.AppendWAL(rec)
}

// Dropped returns how many appends the store has lost so far.
func (f *FlakyStore) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

var _ CheckpointStore = (*FlakyStore)(nil)

// ErrClosed is returned by operations on a closed file-backed store.
var ErrClosed = fmt.Errorf("storage: checkpoint store is closed")
