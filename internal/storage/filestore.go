package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FileStore is the file-backed CheckpointStore: one CRC-framed append-only
// WAL (`wal.log`) plus one checkpoint file per operator (`ckpt-<op>.bin`),
// all under a single directory.
//
// Framing: every WAL record is [length u32le][crc32(payload) u32le][payload].
// On open the log is scanned front to back; the first frame that is short,
// oversized or fails its CRC marks the torn tail left by a mid-append crash,
// and the file is truncated there — un-acknowledged suffix dropped, durable
// prefix kept, exactly the contract ReplayWAL promises.
//
// Fsync policy: appends are batched — the file is fsynced after SyncEvery
// un-synced appends and on every explicit Sync call. The pipeline calls
// Sync at each tick boundary, so at most one tick's appends are ever
// exposed to a power loss, and the simulated crash points (which always
// fall on boundaries) lose nothing.
//
// Checkpoints are written to a temp file, fsynced, then renamed over the
// previous checkpoint: a crash mid-save leaves the old checkpoint intact.
type FileStore struct {
	dir       string
	syncEvery int

	mu       sync.Mutex
	wal      *os.File
	unsynced int
	closed   bool
}

// DefaultSyncEvery is the fsync batch size when none is configured.
const DefaultSyncEvery = 64

// maxWALRecord bounds a single record frame; anything larger is treated as
// corruption when the log is scanned (a torn length field can otherwise
// claim gigabytes).
const maxWALRecord = 1 << 28

// FileStoreOption configures OpenFileStore.
type FileStoreOption func(*FileStore)

// WithSyncEvery sets the fsync batch size (<= 1 fsyncs every append).
func WithSyncEvery(n int) FileStoreOption {
	return func(fs *FileStore) { fs.syncEvery = n }
}

// OpenFileStore opens (creating if needed) the store rooted at dir and
// truncates any torn WAL tail left by a previous crash.
func OpenFileStore(dir string, opts ...FileStoreOption) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create store dir: %w", err)
	}
	fs := &FileStore{dir: dir, syncEvery: DefaultSyncEvery}
	for _, opt := range opts {
		opt(fs)
	}
	if fs.syncEvery < 1 {
		fs.syncEvery = 1
	}
	f, err := os.OpenFile(fs.walPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	fs.wal = f
	if err := fs.truncateTornTail(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// Dir returns the directory the store is rooted at — what a recovering
// process reopens after the original store handle died with it.
func (fs *FileStore) Dir() string { return fs.dir }

func (fs *FileStore) walPath() string { return filepath.Join(fs.dir, "wal.log") }

func (fs *FileStore) ckptPath(op int) string {
	return filepath.Join(fs.dir, fmt.Sprintf("ckpt-%d.bin", op))
}

// truncateTornTail scans the WAL and cuts it at the first damaged frame,
// positioning the write offset at the new end. Only called from
// OpenFileStore, before the store is shared, but it takes the lock anyway
// so the wal-handle guard discipline holds everywhere.
func (fs *FileStore) truncateTornTail() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	end, err := scanWAL(fs.wal, nil)
	if err != nil {
		return err
	}
	if err := fs.wal.Truncate(end); err != nil {
		return fmt.Errorf("storage: truncate torn wal tail: %w", err)
	}
	if _, err := fs.wal.Seek(end, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek wal end: %w", err)
	}
	return nil
}

// scanWAL walks intact frames from the start of r, calling visit (when
// non-nil) with each payload, and returns the byte offset where the intact
// prefix ends. Damage — short header, oversized length, short payload, CRC
// mismatch — ends the scan without an error: that is the torn tail.
func scanWAL(r io.ReaderAt, visit func(rec []byte) error) (int64, error) {
	var off int64
	var hdr [8]byte
	for {
		if _, err := r.ReadAt(hdr[:], off); err != nil {
			return off, nil // short header: clean end or torn tail
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxWALRecord {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := r.ReadAt(payload, off+8); err != nil {
			return off, nil // short payload: torn tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil
		}
		if visit != nil {
			if err := visit(payload); err != nil {
				return off, err
			}
		}
		off += 8 + int64(n)
	}
}

// AppendWAL frames and appends one record, fsyncing per the batch policy.
func (fs *FileStore) AppendWAL(rec []byte) error {
	frame := make([]byte, 8+len(rec))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(rec))
	copy(frame[8:], rec)

	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if _, err := fs.wal.Write(frame); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	fs.unsynced++
	if fs.unsynced >= fs.syncEvery {
		return fs.syncLocked()
	}
	return nil
}

// Sync fsyncs any batched appends; the caller holds no lock.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	return fs.syncLocked()
}

// syncLocked flushes the WAL file; the caller holds fs.mu.
func (fs *FileStore) syncLocked() error {
	if fs.unsynced == 0 {
		return nil
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("storage: fsync wal: %w", err)
	}
	fs.unsynced = 0
	return nil
}

// ReplayWAL re-reads the log from the start through a separate read handle,
// so it is safe while the store is open for appends (recovery re-opens the
// store, but the audit path replays a live one).
func (fs *FileStore) ReplayWAL(visit func(rec []byte) error) error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return ErrClosed
	}
	if err := fs.syncLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	fs.mu.Unlock()
	f, err := os.Open(fs.walPath())
	if err != nil {
		return fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()
	_, err = scanWAL(f, visit)
	return err
}

// ResetWAL discards the log contents.
func (fs *FileStore) ResetWAL() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if err := fs.wal.Truncate(0); err != nil {
		return fmt.Errorf("storage: reset wal: %w", err)
	}
	if _, err := fs.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek wal start: %w", err)
	}
	fs.unsynced = 0
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("storage: fsync reset wal: %w", err)
	}
	return nil
}

// SaveCheckpoint atomically replaces op's checkpoint via write-temp,
// fsync, rename.
func (fs *FileStore) SaveCheckpoint(op int, data []byte) error {
	fs.mu.Lock()
	closed := fs.closed
	fs.mu.Unlock()
	if closed {
		return ErrClosed
	}
	final := fs.ckptPath(op)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create checkpoint temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: fsync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close checkpoint temp: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: publish checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads op's checkpoint; a missing file is ok=false.
func (fs *FileStore) LoadCheckpoint(op int) ([]byte, bool, error) {
	data, err := os.ReadFile(fs.ckptPath(op))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("storage: read checkpoint: %w", err)
	}
	return data, true, nil
}

// Close flushes and closes the WAL handle; the directory stays readable by
// a later OpenFileStore.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	if err := fs.syncLocked(); err != nil {
		return err
	}
	fs.closed = true
	return fs.wal.Close()
}

var _ CheckpointStore = (*FileStore)(nil)
