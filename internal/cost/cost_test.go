package cost

import (
	"math"
	"testing"
	"testing/quick"

	"amri/internal/bitindex"
	"amri/internal/query"
)

func baseParams() Params {
	return Params{LambdaD: 100, LambdaR: 50, Ch: 1, Cc: 0.25, Window: 60}
}

func TestParamsValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := baseParams()
	bad.Ch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero Ch should fail")
	}
	bad = baseParams()
	bad.Window = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative window should fail")
	}
}

func TestCDHandComputed(t *testing.T) {
	// One pattern <A,*> with freq 1 under IC[2,0]:
	//   maintain = 100 * 1 * 1 = 100       (one indexed attribute)
	//   search   = 50 * (1*1 + 100*60*1/4 * 0.25) = 50 * (1 + 375) = 18800
	p := baseParams()
	cfg := bitindex.NewConfig(2, 0)
	stats := []APStat{{P: query.PatternOf(0), Freq: 1}}
	got := CD(p, cfg, stats)
	want := 100.0 + 50*(1+375.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CD = %g, want %g", got, want)
	}
}

func TestCDZeroBitsMeansFullScan(t *testing.T) {
	p := baseParams()
	cfg := bitindex.NewConfig(0, 0)
	stats := []APStat{{P: query.PatternOf(0, 1), Freq: 1}}
	got := CD(p, cfg, stats)
	// No indexed attrs: no hashing anywhere; scan the whole window state.
	want := p.LambdaR * p.LambdaD * p.Window * p.Cc
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CD = %g, want %g", got, want)
	}
}

func TestCDBitOnConstrainedAttrHalvesScan(t *testing.T) {
	p := baseParams()
	stats := []APStat{{P: query.PatternOf(0), Freq: 1}}
	scan := func(cfg bitindex.Config) float64 {
		return CD(p, cfg, stats) - MaintainCost(p, cfg) - p.LambdaR*HashCost(p, cfg, stats[0].P)
	}
	s1 := scan(bitindex.NewConfig(1, 0))
	s2 := scan(bitindex.NewConfig(2, 0))
	if math.Abs(s1/s2-2) > 1e-9 {
		t.Fatalf("scan term should halve per bit: %g vs %g", s1, s2)
	}
}

func TestCDBitsOnWildAttrDoNotHelp(t *testing.T) {
	p := baseParams()
	stats := []APStat{{P: query.PatternOf(0), Freq: 1}}
	// Bits on attribute 1 (wild in the only pattern) cannot reduce the
	// scan; they only add insert-side hashing.
	a := CD(p, bitindex.NewConfig(3, 0), stats)
	b := CD(p, bitindex.NewConfig(3, 3), stats)
	if b <= a {
		t.Fatalf("wasted bits should cost more: with=%g without=%g", b, a)
	}
}

func TestExpectedTuplesScanned(t *testing.T) {
	cfg := bitindex.NewConfig(3, 2)
	if got := ExpectedTuplesScanned(cfg, query.PatternOf(0), 800); got != 100 {
		t.Fatalf("got %g, want 800/2^3", got)
	}
	if got := ExpectedTuplesScanned(cfg, 0, 800); got != 800 {
		t.Fatalf("full scan expectation = %g, want 800", got)
	}
}

func TestExpectedBucketsProbed(t *testing.T) {
	cfg := bitindex.NewConfig(5, 2, 3)
	// The Section III example: sr1 constrains A1 and A3, A2's 2 bits fan out.
	if got := ExpectedBucketsProbed(cfg, query.PatternOf(0, 2)); got != 4 {
		t.Fatalf("buckets = %g, want 4", got)
	}
}

// Property: C_D is monotonically non-increasing in bits granted to an
// attribute that some pattern constrains with weight, holding hashing free.
func TestCDScanMonotonicity(t *testing.T) {
	f := func(b1 uint8, freq8 uint8) bool {
		b := int(b1 % 10)
		freq := float64(freq8%100)/100 + 0.01
		p := baseParams()
		p.Ch = 1e-12 // isolate the scan term
		stats := []APStat{{P: query.PatternOf(0), Freq: freq}}
		lo := CD(p, bitindex.NewConfig(uint8(b), 0), stats)
		hi := CD(p, bitindex.NewConfig(uint8(b+1), 0), stats)
		return hi <= lo+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CD is linear in pattern frequency for the scan component.
func TestCDAdditiveOverStats(t *testing.T) {
	f := func(f1, f2 uint8) bool {
		p := baseParams()
		cfg := bitindex.NewConfig(2, 2)
		a := []APStat{{P: query.PatternOf(0), Freq: float64(f1) / 255}}
		b := []APStat{{P: query.PatternOf(1), Freq: float64(f2) / 255}}
		both := append(append([]APStat(nil), a...), b...)
		sum := CD(p, cfg, a) + CD(p, cfg, b) - MaintainCost(p, cfg)
		return math.Abs(CD(p, cfg, both)-sum) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationStopTheWorld: with no drain rate the cost is pure
// relocation — stateSize tuples rehashed into the target directory.
func TestMigrationStopTheWorld(t *testing.T) {
	p := baseParams()
	from := bitindex.NewConfig(2, 0)
	to := bitindex.NewConfig(1, 1)
	got := Migration(p, from, to, 1000, 0, 0)
	want := 1000 * (float64(to.IndexedAttrs())*p.Ch + p.Cc)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Migration = %g, want %g", got, want)
	}
	if Migration(p, from, to, 0, 0, 0) != 0 {
		t.Fatal("empty state migrates for free")
	}
}

// TestMigrationIncrementalAddsDualDirectory: a finite drain rate stretches
// the move over stateSize/drainRate time units during which every probe
// pays the old directory's hash overhead on top.
func TestMigrationIncrementalAddsDualDirectory(t *testing.T) {
	p := baseParams()
	from := bitindex.NewConfig(2, 1)
	to := bitindex.NewConfig(0, 3)
	stw := Migration(p, from, to, 5000, 0, 0)
	inc := Migration(p, from, to, 5000, 250, 0)
	wantDual := p.LambdaR * (5000.0 / 250.0) * float64(from.IndexedAttrs()) * p.Ch
	if math.Abs(inc-stw-wantDual) > 1e-9 {
		t.Fatalf("dual-directory overhead = %g, want %g", inc-stw, wantDual)
	}
}

// TestMigrationCalibratedPerTuple: an observed per-tuple drain cost
// overrides the analytic prior.
func TestMigrationCalibratedPerTuple(t *testing.T) {
	p := baseParams()
	from := bitindex.NewConfig(1, 0)
	to := bitindex.NewConfig(0, 1)
	got := Migration(p, from, to, 300, 0, 2.5)
	if math.Abs(got-300*2.5) > 1e-9 {
		t.Fatalf("calibrated Migration = %g, want %g", got, 750.0)
	}
}
