// Package cost implements the paper's Section IV-A cost model: the index
// configuration dependent cost C_D of Equation 1, built from the Table I
// notation. The tuner ranks candidate configurations by this quantity; the
// cost-model experiment validates its scan-count predictions against the
// measured behaviour of the bit-address index.
package cost

import (
	"fmt"
	"math"

	"amri/internal/bitindex"
	"amri/internal/query"
)

// Params carries the workload rates and per-operation costs of Table I.
type Params struct {
	// LambdaD is the number of incoming tuples per stream per time unit.
	LambdaD float64
	// LambdaR is the number of search requests per time unit.
	LambdaR float64
	// Ch is the average cost of computing one hash function.
	Ch float64
	// Cc is the average cost of one value comparison.
	Cc float64
	// Window is the window length W in time units; the expected state size
	// is LambdaD * Window.
	Window float64
}

// Validate rejects non-positive rates and costs.
func (p Params) Validate() error {
	if p.LambdaD <= 0 || p.LambdaR < 0 || p.Ch <= 0 || p.Cc <= 0 || p.Window <= 0 {
		return fmt.Errorf("cost: invalid params %+v", p)
	}
	return nil
}

// APStat is one assessed access pattern with its relative frequency
// (F_ap in Table I; frequencies over a stat set need not sum to 1 when the
// assessor reports only heavy hitters).
type APStat struct {
	P    query.Pattern
	Freq float64
}

// CD evaluates Equation 1 for the configuration:
//
//	C_D = λ_d·N_A·C_h  +  λ_r·Σ_ap ( N_{A,ap}·C_h + (λ_d·W·F_ap / 2^B_ap)·C_c )
//
// The first term is insert-side hashing (every indexed attribute of every
// arriving tuple), the second is per-request hashing plus the expected
// bucket scan, which shrinks by half for every bit assigned to an attribute
// the pattern constrains.
func CD(p Params, cfg bitindex.Config, stats []APStat) float64 {
	maintain := p.LambdaD * float64(cfg.IndexedAttrs()) * p.Ch
	var search float64
	for _, s := range stats {
		bap := cfg.BitsFor(s.P)
		scan := p.LambdaD * p.Window * s.Freq / pow2(bap)
		search += float64(cfg.IndexedIn(s.P))*p.Ch + scan*p.Cc
	}
	return maintain + p.LambdaR*search
}

// ExpectedTuplesScanned predicts how many stored tuples one search with the
// given pattern compares against: stateSize / 2^B_ap, the scan factor inside
// Equation 1. It assumes the configuration distributes tuples evenly over
// buckets (the paper's stated ideal).
func ExpectedTuplesScanned(cfg bitindex.Config, p query.Pattern, stateSize int) float64 {
	return float64(stateSize) / pow2(cfg.BitsFor(p))
}

// ExpectedBucketsProbed predicts the bucket fan-out of one search:
// 2^(TotalBits - B_ap).
func ExpectedBucketsProbed(cfg bitindex.Config, p query.Pattern) float64 {
	return pow2(cfg.TotalBits() - cfg.BitsFor(p))
}

// pow2 is 2^bits as a float64 — exact for every bit budget a configuration
// can hold, and a single exponent-field construction instead of the general
// math.Pow path, which the tuning pass was hot enough to surface in CPU
// profiles (pow → frexp/ldexp/modf was ~5% of a drift run).
func pow2(bits int) float64 { return math.Ldexp(1, bits) }

// Migration prices the one-time cost of moving a state of stateSize stored
// tuples from one configuration to another, in the same cost units as CD:
//
//   - relocation: every stored tuple is re-hashed under the target
//     configuration and re-linked into its new bucket. perTuple, when
//     positive, is the observed per-tuple drain cost (realized hashes and
//     relinks per tuple, fed back from completed incremental migrations);
//     otherwise the model's prior IndexedAttrs(to)·C_h + C_c is used.
//   - dual-directory overhead: an incremental drain relocates drainRate
//     tuples per time unit (MigrateStepTuples per arriving tuple on the
//     concurrent index, per tick in the simulator), so it stays live for
//     roughly stateSize/drainRate time units, during which every search
//     must hash and probe the old directory as well —
//     λ_r·drainTime·N_A(from)·C_h of extra request work. drainRate <= 0
//     means a stop-the-world migration: no dual-directory window,
//     relocation cost only.
//
// Both terms are first-order: they deliberately ignore bucket-scan skew
// while the directories are split, which the controller's predicted-vs-
// realized ledger exists to audit.
func Migration(p Params, from, to bitindex.Config, stateSize int, drainRate, perTuple float64) float64 {
	if stateSize <= 0 {
		return 0
	}
	per := perTuple
	if per <= 0 {
		per = float64(to.IndexedAttrs())*p.Ch + p.Cc
	}
	relocate := float64(stateSize) * per
	var dual float64
	if drainRate > 0 {
		drainTime := float64(stateSize) / drainRate
		dual = p.LambdaR * drainTime * float64(from.IndexedAttrs()) * p.Ch
	}
	return relocate + dual
}

// HashCost returns the pure hashing component of one search request under
// the configuration: N_{A,ap}·C_h.
func HashCost(p Params, cfg bitindex.Config, ap query.Pattern) float64 {
	return float64(cfg.IndexedIn(ap)) * p.Ch
}

// MaintainCost returns the per-time-unit insert-side hashing cost:
// λ_d·N_A·C_h.
func MaintainCost(p Params, cfg bitindex.Config) float64 {
	return p.LambdaD * float64(cfg.IndexedAttrs()) * p.Ch
}
