package multiquery

import (
	"strings"
	"testing"

	"amri/internal/query"
	"amri/internal/stream"
)

func TestCompileValidation(t *testing.T) {
	streams := []query.StreamSpec{{Name: "A", Arity: 2}, {Name: "B", Arity: 2}}
	ok := QuerySpec{Preds: []query.Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}}, Window: 10}

	if _, err := Compile(Workload{}); err == nil {
		t.Error("no streams should fail")
	}
	if _, err := Compile(Workload{Streams: streams}); err == nil {
		t.Error("no queries should fail")
	}
	bad := ok
	bad.Window = 0
	if _, err := Compile(Workload{Streams: streams, Queries: []QuerySpec{bad}}); err == nil {
		t.Error("zero window should fail")
	}
	bad = QuerySpec{Preds: []query.Predicate{{Left: 0, LeftAttr: 0, Right: 9, RightAttr: 0}}, Window: 10}
	if _, err := Compile(Workload{Streams: streams, Queries: []QuerySpec{bad}}); err == nil {
		t.Error("unknown stream should fail")
	}
	bad = QuerySpec{Preds: nil, Window: 10}
	if _, err := Compile(Workload{Streams: streams, Queries: []QuerySpec{bad}}); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := Compile(Workload{Streams: streams, Queries: []QuerySpec{ok}}); err != nil {
		t.Errorf("valid workload failed: %v", err)
	}
}

func TestCompileUnionJAS(t *testing.T) {
	w := TwoQueryWorkload()
	c, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxWindow != 60 {
		t.Fatalf("MaxWindow = %d", c.MaxWindow)
	}
	// Stream B (1) joins A,C,D for Q0 (3 attrs) plus A and C for Q1 via
	// attrs 3 and 4: union JAS of 5.
	if got := c.States[1].NumAttrs(); got != 5 {
		t.Fatalf("stream B union JAS = %d, want 5", got)
	}
	// Stream D (3) participates only in Q0: 3 attrs.
	if got := c.States[3].NumAttrs(); got != 3 {
		t.Fatalf("stream D union JAS = %d, want 3", got)
	}
	// Q1's view covers streams 0..2 only.
	if c.Queries[1].Mask != 0b0111 {
		t.Fatalf("Q1 mask = %b", c.Queries[1].Mask)
	}
	if c.Queries[0].Mask != 0b1111 {
		t.Fatalf("Q0 mask = %b", c.Queries[0].Mask)
	}
}

func TestPatternForSeparatesQueries(t *testing.T) {
	c, _ := Compile(TwoQueryWorkload())
	b := c.States[1]
	// Coverage {A}: Q0 constrains B's A-join attr (one of attrs 0..2);
	// Q1 constrains B's attr 3 entry. The two patterns must differ and
	// each have exactly one bit.
	p0 := b.PatternFor(0, 1<<0)
	p1 := b.PatternFor(1, 1<<0)
	if p0.Count() != 1 || p1.Count() != 1 {
		t.Fatalf("patterns %v / %v should each have one bit", p0, p1)
	}
	if p0 == p1 {
		t.Fatal("queries joining via different attributes must induce different patterns")
	}
	// Non-participating coverage yields empty pattern for Q1.
	if got := b.PatternFor(1, 1<<3); got != 0 {
		t.Fatalf("Q1 does not join D; pattern = %v", got)
	}
}

func TestSameAttrSharedAcrossQueries(t *testing.T) {
	// Two queries joining the same pair via the same attributes share one
	// JAS entry tagged with both query bits.
	streams := []query.StreamSpec{{Name: "A", Arity: 1}, {Name: "B", Arity: 1}}
	pred := []query.Predicate{{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0}}
	c, err := Compile(Workload{Streams: streams, Queries: []QuerySpec{
		{Preds: pred, Window: 10},
		{Preds: pred, Window: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if c.States[0].NumAttrs() != 1 {
		t.Fatalf("JAS should be shared: %d entries", c.States[0].NumAttrs())
	}
	if c.States[0].JAS[0].Queries != 0b11 {
		t.Fatalf("query mask = %b", c.States[0].JAS[0].Queries)
	}
}

func mqProfile() stream.Profile {
	return stream.Profile{
		LambdaD:      8,
		PayloadBytes: 40,
		EpochTicks:   50,
		Domains:      []uint64{8, 12, 18, 27, 40, 60, 90, 130},
	}
}

func TestRunProducesPerQueryResults(t *testing.T) {
	r, err := Run(RunConfig{
		Workload: TwoQueryWorkload(),
		Profile:  mqProfile(),
		Seed:     1,
		Ticks:    120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerQueryResults) != 2 {
		t.Fatalf("per-query results = %v", r.PerQueryResults)
	}
	if r.PerQueryResults[0] == 0 || r.PerQueryResults[1] == 0 {
		t.Fatalf("both queries should produce results: %v", r.PerQueryResults)
	}
	if r.Probes == 0 {
		t.Fatal("no probes")
	}
	if len(r.Configs) != 4 {
		t.Fatalf("shared mode should report 4 state configs, got %v", r.Configs)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Workload: TwoQueryWorkload(), Profile: mqProfile(), Ticks: 0}); err == nil {
		t.Fatal("zero ticks should fail")
	}
	bad := mqProfile()
	bad.Domains = nil
	if _, err := Run(RunConfig{Workload: TwoQueryWorkload(), Profile: bad, Ticks: 10}); err == nil {
		t.Fatal("bad profile should fail")
	}
}

// TestSharedVsDedicated: the shared design must produce the same per-query
// results as dedicated per-query indexes (indexes are lossless; only costs
// differ) while using clearly less index memory.
func TestSharedVsDedicated(t *testing.T) {
	base := RunConfig{
		Workload: TwoQueryWorkload(),
		Profile:  mqProfile(),
		Seed:     3,
		Ticks:    100,
	}
	shared, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ded := base
	ded.Dedicated = true
	dedicated, err := Run(ded)
	if err != nil {
		t.Fatal(err)
	}
	for q := range shared.PerQueryResults {
		if shared.PerQueryResults[q] != dedicated.PerQueryResults[q] {
			t.Fatalf("query %d: shared %d != dedicated %d (indexes must be lossless)",
				q, shared.PerQueryResults[q], dedicated.PerQueryResults[q])
		}
	}
	if shared.IndexMemBytes >= dedicated.IndexMemBytes {
		t.Fatalf("shared memory %d should undercut dedicated %d",
			shared.IndexMemBytes, dedicated.IndexMemBytes)
	}
	// Dedicated mode: 3 streams x 2 queries + 1 stream x 1 query = 7 indexes.
	if len(dedicated.Configs) != 7 {
		t.Fatalf("dedicated mode should report 7 configs, got %d: %v",
			len(dedicated.Configs), dedicated.Configs)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{Workload: TwoQueryWorkload(), Profile: mqProfile(), Seed: 9, Ticks: 60}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for q := range a.PerQueryResults {
		if a.PerQueryResults[q] != b.PerQueryResults[q] {
			t.Fatalf("nondeterministic: %v vs %v", a.PerQueryResults, b.PerQueryResults)
		}
	}
}

func TestTuningFollowsBothQueries(t *testing.T) {
	r, err := Run(RunConfig{
		Workload:      TwoQueryWorkload(),
		Profile:       mqProfile(),
		Seed:          5,
		Ticks:         200,
		AutoTuneEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Retunes == 0 {
		t.Fatal("shared indexes never retuned")
	}
	// Stream B's shared config covers 5 attributes; after tuning, bits
	// should exist (the index serves two queries' patterns).
	var bCfg string
	for _, c := range r.Configs {
		if strings.HasPrefix(c, "S1:") {
			bCfg = c
		}
	}
	if bCfg == "" {
		t.Fatalf("missing stream B config in %v", r.Configs)
	}
}
