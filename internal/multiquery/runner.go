package multiquery

import (
	"fmt"
	"math/rand/v2"

	"amri/internal/core"
	"amri/internal/query"
	"amri/internal/router"
	"amri/internal/stream"
	"amri/internal/tuple"
	"amri/internal/window"
)

// RunConfig describes one multi-query run.
type RunConfig struct {
	Workload Workload
	// Profile supplies arrival rate, payload, drift period and the domain
	// pool; the per-predicate domain assignment is derived from it.
	Profile stream.Profile
	Seed    uint64
	Ticks   int64
	// BitBudget is the IC bits per index (default 12).
	BitBudget int
	// Method is the assessment method (default CDIA-highest).
	Method core.Method
	// AutoTuneEvery retunes an index after that many probes (default 2000).
	AutoTuneEvery uint64
	// Dedicated switches to the baseline: one index per (state, query)
	// instead of one shared index per state. Same workload, more memory.
	Dedicated bool
}

// Result summarizes a run.
type Result struct {
	// PerQueryResults is the cumulative result count of each query.
	PerQueryResults []uint64
	// Probes counts the search requests executed.
	Probes uint64
	// Retunes counts index migrations across all indexes.
	Retunes int
	// IndexMemBytes is the total simulated index memory at the end — the
	// quantity the shared design halves.
	IndexMemBytes int
	// Configs holds the final configuration of every index (per state,
	// then per query within a state in dedicated mode).
	Configs []string
}

// state is one shared stream state at runtime.
type state struct {
	spec *State
	// indexes[0] is the shared index; in dedicated mode indexes[q] serves
	// query q (nil for non-participating queries).
	indexes  []*core.AdaptiveIndex
	retained *window.Buckets
}

// Run executes the workload: every arrival is stored once per index
// covering it, then cascades through each query it participates in.
func Run(cfg RunConfig) (*Result, error) {
	comp, err := Compile(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("multiquery: Ticks must be positive")
	}
	if cfg.BitBudget == 0 {
		cfg.BitBudget = 12
	}
	if cfg.AutoTuneEvery == 0 {
		cfg.AutoTuneEvery = 2000
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}

	gen, err := newGenerator(comp, cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}

	nQ := len(comp.Queries)
	states := make([]*state, len(comp.Streams))
	for s, spec := range comp.States {
		st := &state{spec: spec, retained: window.New(comp.MaxWindow, 0)}
		attrMap := make([]int, spec.NumAttrs())
		for i, ja := range spec.JAS {
			attrMap[i] = ja.Attr
		}
		mk := func(salt uint64) (*core.AdaptiveIndex, error) {
			return core.New(core.Options{
				NumAttrs:      spec.NumAttrs(),
				AttrMap:       attrMap,
				BitBudget:     cfg.BitBudget,
				Method:        cfg.Method,
				AutoTuneEvery: cfg.AutoTuneEvery,
				Seed:          cfg.Seed + salt,
			})
		}
		if cfg.Dedicated {
			st.indexes = make([]*core.AdaptiveIndex, nQ)
			for q := 0; q < nQ; q++ {
				if !comp.Queries[q].Participates(s) {
					continue
				}
				ix, err := mk(uint64(s*100 + q))
				if err != nil {
					return nil, err
				}
				st.indexes[q] = ix
			}
		} else {
			ix, err := mk(uint64(s))
			if err != nil {
				return nil, err
			}
			st.indexes = []*core.AdaptiveIndex{ix}
		}
		states[s] = st
	}

	// One router per query; non-participating streams are masked as
	// already-covered so Next never picks them.
	routers := make([]*router.Router, nQ)
	for q := range routers {
		routers[q] = router.New(len(comp.Streams), 0.03, cfg.Seed+uint64(q)*7+1)
	}

	res := &Result{PerQueryResults: make([]uint64, nQ)}
	lens := make([]int, len(comp.Streams))

	indexFor := func(s, q int) *core.AdaptiveIndex {
		st := states[s]
		if cfg.Dedicated {
			return st.indexes[q]
		}
		return st.indexes[0]
	}

	// probe runs one search request for query q against state s.
	probe := func(q, s int, c *tuple.Composite) []*tuple.Tuple {
		view := comp.Queries[q]
		spec := states[s].spec
		p := spec.PatternFor(q, c.Done)
		vals := make([]tuple.Value, spec.NumAttrs())
		for i, ja := range spec.JAS {
			if p.Has(i) {
				vals[i] = c.Parts[ja.Partner].Attrs[ja.PartnerAttr]
			}
		}
		driver := c.Driver()
		var matches []*tuple.Tuple
		indexFor(s, q).Search(p, vals, func(x *tuple.Tuple) bool {
			if x.Arrival >= driver.Arrival {
				return true // exactly-once
			}
			if x.TS <= driver.TS-view.Window {
				return true // outside this query's window
			}
			for i, ja := range spec.JAS {
				if p.Has(i) && x.Attrs[ja.Attr] != vals[i] {
					return true
				}
			}
			matches = append(matches, x)
			return true
		})
		res.Probes++
		return matches
	}

	// cascade advances one composite of query q to completion, depth-first.
	var cascade func(q int, c *tuple.Composite)
	cascade = func(q int, c *tuple.Composite) {
		view := comp.Queries[q]
		if c.Done&view.Mask == view.Mask {
			res.PerQueryResults[q]++
			return
		}
		for i := range states {
			if ix := indexFor(i, q); ix != nil {
				lens[i] = ix.Len()
			} else {
				lens[i] = 0
			}
		}
		next := routers[q].Next(c.Done|^view.Mask, lens)
		if next < 0 {
			return
		}
		matches := probe(q, next, c)
		if c.Count() == 1 {
			src := c.Origin
			routers[q].ObservePair(src, next, len(matches), indexFor(next, q).Len())
		}
		for _, m := range matches {
			cascade(q, c.Extend(m))
		}
	}

	for tick := int64(0); tick < cfg.Ticks; tick++ {
		for _, t := range gen.tickArrivals(tick) {
			st := states[t.Stream]
			// Store once per index covering this stream.
			for _, ix := range st.indexes {
				if ix != nil {
					ix.Insert(t)
				}
			}
			st.retained.Add(t)
			// Expire by the longest window; per-query windows are enforced
			// at probe time.
			st.retained.Expire(tick, func(old *tuple.Tuple) {
				for _, ix := range st.indexes {
					if ix != nil {
						ix.Delete(old)
					}
				}
			})
			// Cascade through every query this stream participates in.
			for q, view := range comp.Queries {
				if view.Participates(t.Stream) {
					cascade(q, tuple.NewComposite(len(comp.Streams), t))
				}
			}
		}
	}

	for _, st := range states {
		for qi, ix := range st.indexes {
			if ix == nil {
				continue
			}
			res.IndexMemBytes += ix.MemBytes()
			res.Retunes += ix.Retunes()
			label := fmt.Sprintf("S%d", st.spec.Stream)
			if cfg.Dedicated {
				label = fmt.Sprintf("S%d/Q%d", st.spec.Stream, qi)
			}
			res.Configs = append(res.Configs, fmt.Sprintf("%s:%v", label, ix.Config()))
		}
	}
	return res, nil
}

// generator draws tuple attributes from per-predicate-component domains,
// rotating the assignment every drift epoch like stream.Generator.
type generator struct {
	comp    *Compiled
	prof    stream.Profile
	rng     *rand.Rand
	seqs    []uint64
	arrival uint64
	// compOf maps (stream, attr) to its predicate component id, -1 when
	// the attribute joins nothing.
	compOf [][]int
	nComps int
}

func newGenerator(comp *Compiled, prof stream.Profile, seed uint64) (*generator, error) {
	g := &generator{
		comp: comp,
		prof: prof,
		rng:  rand.New(rand.NewPCG(seed, seed^0xfeedface)),
		seqs: make([]uint64, len(comp.Streams)),
	}
	// Union-find over (stream, attr) nodes connected by predicates: both
	// sides of a predicate must draw from one domain.
	id := func(s, a int) int { return s*64 + a }
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, st := range comp.States {
		for _, ja := range st.JAS {
			union(id(st.Stream, ja.Attr), id(ja.Partner, ja.PartnerAttr))
		}
	}
	comps := map[int]int{}
	g.compOf = make([][]int, len(comp.Streams))
	for s, spec := range comp.Streams {
		g.compOf[s] = make([]int, spec.Arity)
		for a := range g.compOf[s] {
			g.compOf[s][a] = -1
		}
	}
	for _, st := range comp.States {
		for _, ja := range st.JAS {
			root := find(id(st.Stream, ja.Attr))
			c, ok := comps[root]
			if !ok {
				c = g.nComps
				comps[root] = c
				g.nComps++
			}
			g.compOf[st.Stream][ja.Attr] = c
			g.compOf[ja.Partner][ja.PartnerAttr] = c
		}
	}
	return g, nil
}

func (g *generator) domainFor(compID int, tick int64) uint64 {
	epoch := 0
	if g.prof.EpochTicks > 0 {
		epoch = int(tick / g.prof.EpochTicks)
	}
	return g.prof.Domains[(compID+epoch)%len(g.prof.Domains)]
}

func (g *generator) tickArrivals(tick int64) []*tuple.Tuple {
	var out []*tuple.Tuple
	for s := range g.comp.Streams {
		arity := g.comp.Streams[s].Arity
		for n := 0; n < g.prof.LambdaD; n++ {
			attrs := make([]tuple.Value, arity)
			for a := 0; a < arity; a++ {
				if c := g.compOf[s][a]; c >= 0 {
					attrs[a] = g.rng.Uint64N(g.domainFor(c, tick))
				}
			}
			t := tuple.New(s, g.seqs[s], tick, attrs)
			t.PayloadBytes = g.prof.PayloadBytes
			g.arrival++
			t.Arrival = g.arrival
			g.seqs[s]++
			out = append(out, t)
		}
	}
	return out
}

// TwoQueryWorkload is the packaged demonstration workload: Q0 is the
// paper's 4-way clique join (window 60) and Q1 a 3-way chain over streams
// 0–2 via separate attributes (window 30), so the shared states of streams
// 0..2 serve two access-pattern populations at once.
func TwoQueryWorkload() Workload {
	streams := []query.StreamSpec{
		{Name: "A", Arity: 5},
		{Name: "B", Arity: 5},
		{Name: "C", Arity: 5},
		{Name: "D", Arity: 3},
	}
	attrFor := func(s, partner int) int {
		k := 0
		for t := 0; t < 4; t++ {
			if t == s {
				continue
			}
			if t == partner {
				return k
			}
			k++
		}
		panic("unreachable")
	}
	var q0 []query.Predicate
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			q0 = append(q0, query.Predicate{
				Left: a, LeftAttr: attrFor(a, b),
				Right: b, RightAttr: attrFor(b, a),
			})
		}
	}
	// Q1: A–B and B–C via the extra attributes 3 and 4.
	q1 := []query.Predicate{
		{Left: 0, LeftAttr: 3, Right: 1, RightAttr: 3},
		{Left: 1, LeftAttr: 4, Right: 2, RightAttr: 3},
	}
	return Workload{
		Streams: streams,
		Queries: []QuerySpec{
			{Preds: q0, Window: 60},
			{Preds: q1, Window: 30},
		},
	}
}
