// Package multiquery extends the system to workloads of several SPJ queries
// over a shared set of streams — the paper's Section II notes its logic
// "equally applies to multiple SPJ queries", and this package makes that
// concrete: each stream keeps ONE state with ONE adaptive index whose join
// attribute set is the union over all queries, and the assessment methods
// aggregate the access patterns of every query's probes. The index tuner
// therefore balances bits across queries automatically, which is the whole
// point of pattern-frequency-driven selection.
package multiquery

import (
	"fmt"
	"sort"

	"amri/internal/query"
)

// QuerySpec is one SPJ query of a multi-query workload: equality predicates
// over the workload's shared streams plus its own window length.
type QuerySpec struct {
	Preds  []query.Predicate
	Window int64
}

// Workload is a set of queries over shared streams.
type Workload struct {
	Streams []query.StreamSpec
	Queries []QuerySpec
}

// JoinAttr is one entry of a state's union join attribute set: a tuple
// attribute joined to one partner stream's attribute, used by one or more
// queries.
type JoinAttr struct {
	// Attr is the attribute position within the state's own tuples.
	Attr int
	// Partner and PartnerAttr identify the other side of the predicate.
	Partner     int
	PartnerAttr int
	// Queries is the bitmask of query ids using this predicate.
	Queries uint32
}

// State is the shared per-stream state spec: the union JAS across queries.
// Pattern bit i refers to JAS[i].
type State struct {
	Stream int
	JAS    []JoinAttr
}

// NumAttrs returns the size of the union join attribute set.
func (s *State) NumAttrs() int { return len(s.JAS) }

// PatternFor returns the access pattern a probe into this state uses for
// query q when the composite covers the streams in doneMask: only JAS
// entries belonging to q whose partner is covered become constrained.
func (s *State) PatternFor(q int, doneMask uint32) query.Pattern {
	var p query.Pattern
	for i, ja := range s.JAS {
		if ja.Queries&(1<<uint(q)) != 0 && doneMask&(1<<uint(ja.Partner)) != 0 {
			p = p.With(i)
		}
	}
	return p
}

// QueryView is the compiled per-query routing view.
type QueryView struct {
	ID int
	// Streams lists the participating stream ids in increasing order.
	Streams []int
	// Mask is the bitmask of participating streams.
	Mask uint32
	// Window is the query's sliding-window length in ticks.
	Window int64
}

// Participates reports whether stream s belongs to the query.
func (v *QueryView) Participates(s int) bool { return v.Mask&(1<<uint(s)) != 0 }

// Compiled is a validated multi-query workload with derived shared states.
type Compiled struct {
	Streams []query.StreamSpec
	States  []*State
	Queries []*QueryView
	// MaxWindow is the longest query window: shared states must retain
	// tuples for the longest interested query.
	MaxWindow int64
}

// Compile validates the workload and derives the shared per-stream states.
// Distinct queries may join the same stream pair via different attributes;
// within one query a stream pair may carry at most one predicate.
func Compile(w Workload) (*Compiled, error) {
	if len(w.Streams) == 0 {
		return nil, fmt.Errorf("multiquery: no streams")
	}
	if len(w.Queries) == 0 || len(w.Queries) > 32 {
		return nil, fmt.Errorf("multiquery: need 1..32 queries, got %d", len(w.Queries))
	}
	c := &Compiled{Streams: w.Streams}
	c.States = make([]*State, len(w.Streams))
	for s := range w.Streams {
		c.States[s] = &State{Stream: s}
	}

	addJA := func(s int, ja JoinAttr) {
		st := c.States[s]
		for i := range st.JAS {
			e := &st.JAS[i]
			if e.Attr == ja.Attr && e.Partner == ja.Partner && e.PartnerAttr == ja.PartnerAttr {
				e.Queries |= ja.Queries
				return
			}
		}
		st.JAS = append(st.JAS, ja)
	}

	for qi, spec := range w.Queries {
		if spec.Window <= 0 {
			return nil, fmt.Errorf("multiquery: query %d: window must be positive", qi)
		}
		if spec.Window > c.MaxWindow {
			c.MaxWindow = spec.Window
		}
		view := &QueryView{ID: qi, Window: spec.Window}
		type pair struct{ a, b int }
		seen := map[pair]bool{}
		for _, p := range spec.Preds {
			if p.Left < 0 || p.Left >= len(w.Streams) || p.Right < 0 || p.Right >= len(w.Streams) {
				return nil, fmt.Errorf("multiquery: query %d: predicate %v references unknown stream", qi, p)
			}
			if p.Left == p.Right {
				return nil, fmt.Errorf("multiquery: query %d: self join %v", qi, p)
			}
			if p.LeftAttr < 0 || p.LeftAttr >= w.Streams[p.Left].Arity ||
				p.RightAttr < 0 || p.RightAttr >= w.Streams[p.Right].Arity {
				return nil, fmt.Errorf("multiquery: query %d: predicate %v attribute out of range", qi, p)
			}
			k := pair{min(p.Left, p.Right), max(p.Left, p.Right)}
			if seen[k] {
				return nil, fmt.Errorf("multiquery: query %d: duplicate pair %v", qi, k)
			}
			seen[k] = true
			view.Mask |= 1<<uint(p.Left) | 1<<uint(p.Right)
			qbit := uint32(1) << uint(qi)
			addJA(p.Left, JoinAttr{Attr: p.LeftAttr, Partner: p.Right, PartnerAttr: p.RightAttr, Queries: qbit})
			addJA(p.Right, JoinAttr{Attr: p.RightAttr, Partner: p.Left, PartnerAttr: p.LeftAttr, Queries: qbit})
		}
		if view.Mask == 0 {
			return nil, fmt.Errorf("multiquery: query %d has no predicates", qi)
		}
		for s := 0; s < len(w.Streams); s++ {
			if view.Participates(s) {
				view.Streams = append(view.Streams, s)
			}
		}
		c.Queries = append(c.Queries, view)
	}

	// Stable JAS ordering: by own attribute, then partner — pattern bits
	// must not depend on predicate listing order.
	for _, st := range c.States {
		sort.Slice(st.JAS, func(i, j int) bool {
			if st.JAS[i].Attr != st.JAS[j].Attr {
				return st.JAS[i].Attr < st.JAS[j].Attr
			}
			return st.JAS[i].Partner < st.JAS[j].Partner
		})
		if len(st.JAS) > query.MaxAttrs {
			return nil, fmt.Errorf("multiquery: stream %d union JAS has %d attrs, max %d",
				st.Stream, len(st.JAS), query.MaxAttrs)
		}
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
