// Package chaos is the exploration harness behind cmd/amrichaos: it runs
// the concurrent pipeline through seeded crash/recover scenarios, checks
// the durability invariants after every recovery, and — when a scenario
// fails — delta-debugs it down to a minimal reproduction that can be
// replayed deterministically (cmd/amripipe -replay).
//
// The invariants a scenario is held to:
//
//   - Conservation: every generated arrival is ingested, shed, or lost —
//     counted, never silently vanished.
//   - Digest equality: the recovered run's result set equals the serial
//     uncrashed reference's (order-independent XOR digest + counters).
//   - Lossless restore: StateLost == 0 with durability on.
//   - Store fidelity: the WAL and checkpoints re-read cleanly and account
//     for exactly the tuples the run ingested (pipeline.AuditStore).
//   - No goroutine leaks across the whole crash/recover chain.
//
// A healthy system passes every scenario; the harness proves it can catch
// real failures via storage.FlakyStore — a lying disk that acknowledges
// WAL appends it drops — which deterministically violates the digest,
// conservation, or audit invariants.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"amri/internal/core"
	"amri/internal/fault"
	"amri/internal/pipeline"
	"amri/internal/storage"
	"amri/internal/stream"
	"amri/internal/tuple"
)

// Scenario is one reproducible exploration point: a workload seed, a fault
// plan (crash schedule included), the pipeline fan-out, and optionally a
// deliberately broken store. Scenarios round-trip through JSON — the repro
// files amrichaos emits and amripipe -replay consumes are exactly this.
type Scenario struct {
	// Seed drives the workload generator and routing randomness.
	Seed uint64 `json:"seed"`
	// Ticks is the run horizon (default 30).
	Ticks int64 `json:"ticks"`
	// Workers and Shards set the probe fan-out (defaults 8 and 8; Shards 0
	// is the flat, unsharded index).
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// MailboxCap bounds operator mailboxes under PolicyBlock (default 64).
	MailboxCap int `json:"mailbox_cap,omitempty"`
	// Plan is the fault plan, crash schedule included.
	Plan fault.Plan `json:"plan"`
	// FlakeEvery, when > 1, wraps the durable store in storage.FlakyStore
	// dropping every FlakeEvery-th WAL append — the seeded broken-store
	// failure the harness exists to catch.
	FlakeEvery int `json:"flake_every,omitempty"`
}

// withDefaults fills the zero-value knobs.
func (s Scenario) withDefaults() Scenario {
	if s.Ticks <= 0 {
		s.Ticks = 30
	}
	if s.Workers <= 0 {
		s.Workers = 8
	}
	if s.MailboxCap <= 0 {
		s.MailboxCap = 64
	}
	return s
}

// profile is the harness workload: the same small four-stream profile the
// pipeline's determinism suite pins.
func profile() stream.Profile {
	return stream.Profile{
		LambdaD:      10,
		PayloadBytes: 40,
		EpochTicks:   40,
		Domains:      []uint64{8, 12, 18, 27, 40, 60},
	}
}

// config builds the pipeline configuration for one leg of a scenario.
func (s Scenario) config(workers, shards int, plan fault.Plan) pipeline.Config {
	return pipeline.Config{
		Profile:         profile(),
		Seed:            s.Seed,
		Ticks:           s.Ticks,
		Method:          core.MethodCDIAHighest,
		AutoTuneEvery:   300,
		Explore:         0.1,
		MailboxCap:      s.MailboxCap,
		ShedPolicy:      pipeline.PolicyBlock,
		Fault:           plan,
		CheckpointEvery: 64,
		MaxRestarts:     50,
		RestartBackoff:  50 * time.Microsecond,
		ProbeWorkers:    workers,
		Shards:          shards,
	}
}

// digest is an order-independent result-set fingerprint, matching the
// pipeline test suite's: per-result hash of every part's identity, XORed.
type digest struct {
	mu  sync.Mutex
	xor uint64
	n   uint64
}

func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (d *digest) add(c *tuple.Composite) {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range c.Parts {
		if p == nil {
			continue
		}
		h += mix(uint64(p.Stream)*0x100000001b3 ^ p.Seq ^ uint64(p.TS)<<20)
	}
	d.mu.Lock()
	d.xor ^= mix(h)
	d.n++
	d.mu.Unlock()
}

// Report is what exploring one scenario produced.
type Report struct {
	Scenario   Scenario `json:"scenario"`
	Violations []string `json:"violations,omitempty"`
	// Results / RefResults are the subject's and the serial reference's
	// result counts; Recoveries is how many crash/recover cycles ran;
	// Dropped is how many WAL appends the flaky store lost (0 without one).
	Results    uint64 `json:"results"`
	RefResults uint64 `json:"ref_results"`
	Recoveries int    `json:"recoveries"`
	Dropped    int    `json:"dropped,omitempty"`
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// settleGoroutines polls until the goroutine count drops to at most want
// (teardown is asynchronous after WaitGroup release).
func settleGoroutines(want int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// Explore runs one scenario end to end: a serial durable reference, then
// the subject run driven through its whole crash schedule, then every
// invariant. It never returns an error — anything that goes wrong is a
// violation in the report, which is what the minimizer's predicate needs.
func Explore(sc Scenario) *Report {
	sc = sc.withDefaults()
	rep := &Report{Scenario: sc}
	before := runtime.NumGoroutine()

	// Serial reference: same plan minus the crash schedule, durable (the
	// lossless-restore semantics must match the subject's), one worker,
	// flat index.
	refPlan := sc.Plan
	refPlan.CrashTicks = nil
	refCfg := sc.config(1, 0, refPlan)
	refCfg.Durable = storage.NewMemStore()
	refDig := &digest{}
	refCfg.OnResult = refDig.add
	refRes, err := pipeline.Run(refCfg)
	if err != nil {
		rep.violate("reference run failed: %v", err)
		return rep
	}
	rep.RefResults = refRes.Results

	// Subject: full fan-out, crash schedule live, optionally a lying disk.
	var store storage.CheckpointStore = storage.NewMemStore()
	var flaky *storage.FlakyStore
	if sc.FlakeEvery > 1 {
		flaky = &storage.FlakyStore{CheckpointStore: store, DropEvery: sc.FlakeEvery}
		store = flaky
	}
	cfg := sc.config(sc.Workers, sc.Shards, sc.Plan)
	cfg.Durable = store
	dig := &digest{}
	cfg.OnResult = dig.add
	res, err := pipeline.Run(cfg)
	// A broken store can make recovery re-crash at the same point; bound
	// the chain so the harness convicts instead of spinning.
	maxRecoveries := 4*len(sc.Plan.CrashTicks) + 8
	for err == nil && res.Crashed {
		if rep.Recoveries++; rep.Recoveries > maxRecoveries {
			rep.violate("recovery did not converge after %d cycles", maxRecoveries)
			break
		}
		res, err = pipeline.Recover(cfg)
	}
	if flaky != nil {
		rep.Dropped = flaky.Dropped()
	}
	if err != nil {
		rep.violate("run/recover failed: %v", err)
	} else if !rep.Failed() {
		rep.Results = res.Results

		// Conservation: arrivals = ingested + shed + lost, exactly.
		arrivals := uint64(sc.Ticks) * uint64(profile().LambdaD) * 4
		if got := res.TuplesIngested + res.IngestShed + res.IngestLost; got != arrivals {
			rep.violate("conservation: %d of %d arrivals accounted (ingested %d, shed %d, lost %d)",
				got, arrivals, res.TuplesIngested, res.IngestShed, res.IngestLost)
		}
		// Digest equality with the uncrashed serial reference.
		if res.Results != refRes.Results {
			rep.violate("results: %d, reference %d", res.Results, refRes.Results)
		}
		if dig.n != refDig.n || dig.xor != refDig.xor {
			rep.violate("result digest: %d results xor %016x, reference %d xor %016x",
				dig.n, dig.xor, refDig.n, refDig.xor)
		}
		// Lossless restore under durability.
		if res.StateLost != 0 {
			rep.violate("StateLost = %d with durability on", res.StateLost)
		}
		// Store round-trip fidelity and accounting.
		if audit, aerr := pipeline.AuditStore(store, len(res.ShedsPerOp)); aerr != nil {
			rep.violate("store audit: %v", aerr)
		} else {
			if audit.IngestRecords != res.TuplesIngested {
				rep.violate("WAL holds %d ingest records, run ingested %d", audit.IngestRecords, res.TuplesIngested)
			}
			if audit.LastTick != sc.Ticks-1 {
				rep.violate("last durable tick %d, want %d", audit.LastTick, sc.Ticks-1)
			}
		}
	}

	if after := settleGoroutines(before); after > before {
		rep.violate("goroutine leak: %d before, %d after", before, after)
	}
	return rep
}

// WriteRepro writes a scenario as an indented JSON repro file.
func WriteRepro(path string, sc Scenario) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a scenario repro file.
func LoadRepro(path string) (Scenario, error) {
	var sc Scenario
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("chaos: parse repro %s: %w", path, err)
	}
	return sc, nil
}
