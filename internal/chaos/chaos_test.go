package chaos

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"amri/internal/fault"
)

// healthyScenario exercises real faults and a real crash schedule against an
// honest store — the harness must find nothing.
func healthyScenario() Scenario {
	return Scenario{
		Seed:    11,
		Ticks:   24,
		Workers: 8,
		Shards:  8,
		Plan: fault.Plan{
			Seed:         11,
			PanicRate:    0.004,
			SaturateRate: 0.01,
			AbortRate:    1.0,
			CrashTicks:   []int64{5, 13},
		},
	}
}

// flakyScenario is the seeded failure: the same run over a lying disk that
// drops every other WAL append. Recovery then resumes from a state that
// disagrees with what the run acknowledged, and the digest / audit
// invariants must convict.
func flakyScenario() Scenario {
	sc := healthyScenario()
	sc.FlakeEvery = 2
	return sc
}

func TestHealthyScenarioPasses(t *testing.T) {
	rep := Explore(healthyScenario())
	if rep.Failed() {
		t.Fatalf("healthy scenario convicted: %v", rep.Violations)
	}
	if rep.Recoveries != 2 {
		t.Fatalf("ran %d recoveries, want one per scheduled crash (2)", rep.Recoveries)
	}
	if rep.Results == 0 || rep.Results != rep.RefResults {
		t.Fatalf("results %d, reference %d", rep.Results, rep.RefResults)
	}
}

func TestFlakyStoreConvicted(t *testing.T) {
	rep := Explore(flakyScenario())
	if !rep.Failed() {
		t.Fatal("lying disk passed every invariant")
	}
	if rep.Dropped == 0 {
		t.Fatal("flaky store dropped nothing; scenario does not exercise the fault")
	}
	// The conviction must replay: which appends the flaky store swallows
	// shifts with goroutine interleaving, so exact counts may wobble, but
	// every replay must fail and for the same invariant families (this is
	// what makes an emitted repro useful).
	again := Explore(flakyScenario())
	if !reflect.DeepEqual(kinds(rep), kinds(again)) {
		t.Fatalf("violation kinds not reproducible:\n  first: %v\n  again: %v", rep.Violations, again.Violations)
	}
}

// kinds reduces a report's violations to their invariant-family prefixes.
func kinds(rep *Report) []string {
	out := make([]string, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		if i := strings.IndexByte(v, ':'); i >= 0 {
			v = v[:i]
		}
		out = append(out, v)
	}
	return out
}

func TestMinimizeShrinksFailingScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization sweep is slow")
	}
	sc := flakyScenario()
	min, st := Minimize(sc, 48)
	if st.Probes > st.Budget {
		t.Fatalf("minimizer overspent: %d probes, budget %d", st.Probes, st.Budget)
	}
	if !Explore(min).Failed() {
		t.Fatal("minimized scenario no longer fails")
	}
	if min.FlakeEvery != sc.FlakeEvery {
		t.Fatalf("minimizer changed the store fault: FlakeEvery %d", min.FlakeEvery)
	}
	if min.Ticks > sc.Ticks || min.Workers > 8 {
		t.Fatalf("minimized scenario grew: ticks %d workers %d", min.Ticks, min.Workers)
	}
	// The fault classes the flaky store doesn't need should be gone.
	if min.Plan.AbortRate != 0 {
		t.Errorf("abort faults survived minimization: %v", min.Plan)
	}
}

func TestMinimizePassesThroughHealthyScenario(t *testing.T) {
	sc := healthyScenario()
	min, st := Minimize(sc, 8)
	if st.Probes != 1 {
		t.Fatalf("spent %d probes on a healthy scenario, want 1", st.Probes)
	}
	if !reflect.DeepEqual(min, sc) {
		t.Fatalf("healthy scenario altered: %+v", min)
	}
}

func TestReproRoundTrip(t *testing.T) {
	sc := flakyScenario()
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, sc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Fatalf("repro round-trip drifted:\n  wrote %+v\n  read  %+v", sc, got)
	}
	if _, err := LoadRepro(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing repro succeeded")
	}
}
