package chaos

// Scenario minimization: a failing scenario is delta-debugged down to a
// minimal reproduction — fault classes are cleared one by one, the crash
// schedule is ddmin-reduced, the horizon and fan-out shrink, and finally
// the seeds are canonicalized — keeping each reduction only if the smaller
// scenario still fails. Every probe is a full Explore, so the result is a
// scenario that provably still violates an invariant.

import "amri/internal/fault"

// MinimizeStats reports what the minimizer did.
type MinimizeStats struct {
	// Probes is how many Explore runs the search spent.
	Probes int `json:"probes"`
	// Budget is the probe cap the search ran under.
	Budget int `json:"budget"`
}

// Minimize shrinks a failing scenario, spending at most budget Explore
// probes (<= 0 means a default of 64). The returned scenario is the
// smallest failing one found; if sc does not fail at all it is returned
// unchanged.
func Minimize(sc Scenario, budget int) (Scenario, MinimizeStats) {
	if budget <= 0 {
		budget = 64
	}
	st := MinimizeStats{Budget: budget}
	fails := func(s Scenario) bool {
		if st.Probes >= budget {
			return false // out of budget: treat as not-failing, keep current best
		}
		st.Probes++
		return Explore(s).Failed()
	}
	if !fails(sc) {
		return sc, st
	}
	best := sc.withDefaults()

	// 1. Fault classes: clear each event family; keep it cleared if the
	// failure survives without it.
	classes := []struct {
		name  string
		clear func(*fault.Plan)
	}{
		{"panic", func(p *fault.Plan) { p.PanicRate = 0 }},
		{"saturate", func(p *fault.Plan) { p.SaturateRate = 0 }},
		{"delay", func(p *fault.Plan) { p.DelayRate = 0; p.Delay = 0 }},
		{"abort", func(p *fault.Plan) { p.AbortRate = 0 }},
		{"pressure", func(p *fault.Plan) { p.PressureRate = 0 }},
		{"assess-cost", func(p *fault.Plan) { p.AssessCost = 0 }},
	}
	for _, c := range classes {
		cand := best
		cand.Plan = best.Plan
		c.clear(&cand.Plan)
		if fails(cand) {
			best = cand
		}
	}

	// 2. Crash schedule: try dropping it wholesale, then ddmin the
	// remaining ticks one element at a time until no single removal keeps
	// the failure alive.
	if len(best.Plan.CrashTicks) > 0 {
		cand := best
		cand.Plan.CrashTicks = nil
		if fails(cand) {
			best = cand
		}
	}
	for changed := true; changed && len(best.Plan.CrashTicks) > 1; {
		changed = false
		for i := range best.Plan.CrashTicks {
			cand := best
			cand.Plan.CrashTicks = append(append([]int64(nil), best.Plan.CrashTicks[:i]...), best.Plan.CrashTicks[i+1:]...)
			if fails(cand) {
				best = cand
				changed = true
				break
			}
		}
	}

	// 3. Horizon: halve while the failure survives (never below the crash
	// schedule — a crash tick past the horizon never fires).
	minTicks := int64(2)
	for _, ct := range best.Plan.CrashTicks {
		if ct+2 > minTicks {
			minTicks = ct + 2
		}
	}
	for best.Ticks/2 >= minTicks {
		cand := best
		cand.Ticks = best.Ticks / 2
		if !fails(cand) {
			break
		}
		best = cand
	}

	// 4. Fan-out: smallest configuration that still fails.
	for _, fan := range [][2]int{{1, 0}, {2, 2}, {4, 4}} {
		if fan[0] >= best.Workers {
			break
		}
		cand := best
		cand.Workers, cand.Shards = fan[0], fan[1]
		if fails(cand) {
			best = cand
			break
		}
	}

	// 5. Seeds: canonicalize to the smallest failing seed.
	for s := uint64(1); s <= 3; s++ {
		if s == best.Seed {
			continue
		}
		cand := best
		cand.Seed = s
		cand.Plan.Seed = s
		if fails(cand) {
			best = cand
			break
		}
	}
	return best, st
}
