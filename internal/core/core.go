// Package core assembles the paper's primary contribution — the Adaptive
// Multi-Route Index (AMRI) — into one embeddable component: a bit-address
// index whose configuration is continuously re-selected from compact
// access-pattern statistics. It glues together internal/bitindex (the
// physical design of Section III), internal/assess (the assessment methods
// of Section IV) and internal/tuner (index selection over the Equation 1
// cost model), and is the type the public amri package exposes.
//
// The engine in internal/engine drives the same machinery inside a full
// stream system; AdaptiveIndex exists so a downstream user can put an AMRI
// on any tuple store they like without adopting the whole engine.
package core

import (
	"fmt"

	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
	"amri/internal/tuner"
	"amri/internal/tuple"
)

// Method selects the assessment method watching the index.
type Method int

const (
	// MethodCDIAHighest compacts hierarchically, rolling into the
	// highest-count parent — the paper's best performer and the default.
	MethodCDIAHighest Method = iota
	// MethodCDIARandom compacts hierarchically, rolling into a random
	// lattice parent.
	MethodCDIARandom
	// MethodSRIA keeps exact counts for every observed pattern.
	MethodSRIA
	// MethodCSRIA compacts with lossy counting (drops sub-threshold mass).
	MethodCSRIA
	// MethodDIA is the lattice twin of SRIA (identical reports).
	MethodDIA
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodSRIA:
		return "SRIA"
	case MethodCSRIA:
		return "CSRIA"
	case MethodDIA:
		return "DIA"
	case MethodCDIARandom:
		return "CDIA-random"
	case MethodCDIAHighest:
		return "CDIA-highest"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configure an AdaptiveIndex.
type Options struct {
	// NumAttrs is the size of the state's join attribute set (required).
	NumAttrs int
	// AttrMap maps IC field i to the tuple attribute position it reads;
	// nil means the identity mapping.
	AttrMap []int
	// BitBudget is the total IC bits (default 12).
	BitBudget int
	// DenseLimit is the dense/sparse directory crossover in total bits
	// (default bitindex.DefaultDenseLimit).
	DenseLimit int
	// Method is the assessment method (default MethodCDIAHighest).
	Method Method
	// Theta is the heavy-hitter threshold (default 0.04), Epsilon the
	// error rate (default 0.005).
	Theta, Epsilon float64
	// AutoTuneEvery triggers a tuning pass after that many observed
	// search requests; 0 disables auto-tuning (call Tune yourself).
	AutoTuneEvery uint64
	// MinGain is the migration hysteresis (default 0.02).
	MinGain float64
	// MaxBitsPerAttr optionally caps per-attribute bits at the attribute's
	// cardinality.
	MaxBitsPerAttr []uint8
	// Hasher overrides the attribute hash (default bitindex.DefaultHasher).
	Hasher bitindex.Hasher
	// MigrateGate, when set, is consulted each time a tuning pass
	// proposes a migration. Returning false makes the index start the
	// incremental migration, advance it one bounded step, then roll it
	// back via AbortMigration — a fault mid-migration, after which the
	// old directory stays authoritative. The fault-injection harness
	// (internal/fault) uses it to force reproducible migration aborts.
	MigrateGate func() bool
	// Cost carries the workload rates for Equation 1. Leave it zero to
	// self-calibrate: the expected scan size is taken from the live state
	// size and the request rate from the observed request/insert ratio.
	Cost cost.Params
	// Seed fixes the random-combination RNG.
	Seed uint64

	autoCost bool
}

func (o *Options) fill() error {
	if o.NumAttrs <= 0 || o.NumAttrs > query.MaxAttrs {
		return fmt.Errorf("core: NumAttrs %d out of range", o.NumAttrs)
	}
	if o.AttrMap == nil {
		o.AttrMap = make([]int, o.NumAttrs)
		for i := range o.AttrMap {
			o.AttrMap[i] = i
		}
	}
	if len(o.AttrMap) != o.NumAttrs {
		return fmt.Errorf("core: AttrMap has %d entries, want %d", len(o.AttrMap), o.NumAttrs)
	}
	if o.BitBudget == 0 {
		o.BitBudget = 12
	}
	if o.DenseLimit == 0 {
		o.DenseLimit = bitindex.DefaultDenseLimit
	}
	if o.Theta == 0 {
		o.Theta = 0.04
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.005
	}
	if o.MinGain == 0 {
		o.MinGain = 0.02
	}
	if o.Cost.LambdaD == 0 {
		o.autoCost = true
		o.Cost = cost.Params{LambdaD: 1, LambdaR: 1, Ch: 1, Cc: 0.25, Window: 1}
	}
	return nil
}

// AdaptiveIndex is a self-tuning bit-address index for one state.
type AdaptiveIndex struct {
	opts Options
	ix   *bitindex.Index
	asr  assess.Assessor

	inserts   uint64
	requests  uint64
	sinceTune uint64
	retunes   int
	aborted   int
}

// New builds an AdaptiveIndex with a uniform starting configuration.
func New(opts Options) (*AdaptiveIndex, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ix, err := bitindex.New(bitindex.Uniform(opts.NumAttrs, opts.BitBudget), opts.AttrMap,
		opts.Hasher, bitindex.WithDenseLimit(opts.DenseLimit))
	if err != nil {
		return nil, err
	}
	var asr assess.Assessor
	switch opts.Method {
	case MethodSRIA:
		asr = assess.NewSRIA()
	case MethodDIA:
		asr = assess.NewDIA()
	case MethodCSRIA:
		asr, err = assess.NewCSRIA(opts.Epsilon)
	case MethodCDIARandom:
		asr, err = assess.NewCDIA(opts.NumAttrs, opts.Epsilon, hh.RollupRandom, opts.Seed)
	case MethodCDIAHighest:
		asr, err = assess.NewCDIA(opts.NumAttrs, opts.Epsilon, hh.RollupHighestCount, opts.Seed)
	default:
		return nil, fmt.Errorf("core: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	return &AdaptiveIndex{opts: opts, ix: ix, asr: asr}, nil
}

// Insert stores a tuple.
func (a *AdaptiveIndex) Insert(t *tuple.Tuple) bitindex.Stats {
	a.inserts++
	return a.ix.Insert(t)
}

// Delete removes a stored tuple (pointer identity).
func (a *AdaptiveIndex) Delete(t *tuple.Tuple) (bitindex.Stats, bool) {
	return a.ix.Delete(t)
}

// Search executes one search request: the access pattern is recorded by the
// assessor, the matching bucket span is scanned, and — when auto-tuning is
// enabled — a tuning pass runs once enough requests have been observed.
// Visited tuples are bucket candidates; the caller applies its predicates.
//
//amrivet:hotpath per-probe adaptive search entry point
func (a *AdaptiveIndex) Search(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats {
	a.asr.Observe(p)
	a.requests++
	a.sinceTune++
	st := a.ix.Search(p, vals, visit)
	if a.opts.AutoTuneEvery > 0 && a.sinceTune >= a.opts.AutoTuneEvery {
		a.Tune()
	}
	return st
}

// Tune runs one assessment + index-selection pass, migrating the index when
// the modelled improvement clears the hysteresis. It reports whether a
// migration happened and the now-active configuration, and resets the
// assessment window.
//
//amrivet:coldpath tuning pass, runs once per assessment window
func (a *AdaptiveIndex) Tune() (migrated bool, active bitindex.Config) {
	stats := a.asr.Results(a.opts.Theta)
	params := a.opts.Cost
	if a.opts.autoCost {
		// Self-calibrate Eq. 1: the expected scan LambdaD·Window is the
		// observed state size, and the request rate is relative to the
		// insert rate seen so far.
		params.Window = float64(max(1, a.ix.Len()))
		if a.inserts > 0 {
			params.LambdaR = params.LambdaD * float64(a.requests) / float64(a.inserts)
		}
	}
	a.asr.Reset()
	a.sinceTune = 0
	if len(stats) == 0 {
		return false, a.ix.Config()
	}
	ctl := &tuner.Controller{
		Params:        params,
		Budget:        a.opts.BitBudget,
		MinGain:       a.opts.MinGain,
		UseExhaustive: a.opts.NumAttrs <= 4 && a.opts.BitBudget <= 16,
		Opt:           tuner.Options{MaxBitsPerAttr: a.opts.MaxBitsPerAttr},
	}
	next, improve := ctl.Propose(a.ix.Config(), stats)
	if !improve {
		return false, a.ix.Config()
	}
	if a.opts.MigrateGate != nil && !a.opts.MigrateGate() {
		// Injected fault mid-migration: run the real incremental
		// machinery a bounded step in, then roll it back, so the abort
		// path exercised here is the one production recovery relies on.
		if err := a.ix.StartMigration(next); err == nil {
			a.ix.MigrateStep(64)
			a.ix.AbortMigration()
		}
		a.aborted++
		return false, a.ix.Config()
	}
	if _, err := a.ix.Migrate(next); err != nil {
		return false, a.ix.Config()
	}
	a.retunes++
	return true, next
}

// ShedAssessment drops the assessor's accumulated statistics and restarts
// the tuning window — the degradation response to memory pressure: the
// statistics are reconstructible, stored tuples are not.
func (a *AdaptiveIndex) ShedAssessment() {
	a.asr.Reset()
	a.sinceTune = 0
}

// Config returns the active index configuration.
func (a *AdaptiveIndex) Config() bitindex.Config { return a.ix.Config() }

// Len returns the number of stored tuples.
func (a *AdaptiveIndex) Len() int { return a.ix.Len() }

// MemBytes returns the simulated resident size (index + statistics).
func (a *AdaptiveIndex) MemBytes() int { return a.ix.MemBytes() + a.asr.MemBytes() }

// Requests returns the number of search requests observed.
func (a *AdaptiveIndex) Requests() uint64 { return a.requests }

// Retunes returns the number of migrations performed.
func (a *AdaptiveIndex) Retunes() int { return a.retunes }

// MigrationAborts returns the number of migrations rolled back by the
// MigrateGate fault hook.
func (a *AdaptiveIndex) MigrationAborts() int { return a.aborted }

// Method returns the active assessment method's name.
func (a *AdaptiveIndex) Method() string { return a.asr.Name() }

// Stats exposes the assessor's current report (for inspection and demos).
func (a *AdaptiveIndex) Stats() []cost.APStat { return a.asr.Results(a.opts.Theta) }

// String summarizes the adaptive index.
func (a *AdaptiveIndex) String() string {
	return fmt.Sprintf("AMRI{%v, %s, %d tuples, %d retunes}",
		a.ix.Config(), a.asr.Name(), a.ix.Len(), a.retunes)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
