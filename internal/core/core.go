// Package core assembles the paper's primary contribution — the Adaptive
// Multi-Route Index (AMRI) — into one embeddable component: a bit-address
// index whose configuration is continuously re-selected from compact
// access-pattern statistics. It glues together internal/bitindex (the
// physical design of Section III), internal/assess (the assessment methods
// of Section IV) and internal/tuner (index selection over the Equation 1
// cost model), and is the type the public amri package exposes.
//
// The engine in internal/engine drives the same machinery inside a full
// stream system; AdaptiveIndex exists so a downstream user can put an AMRI
// on any tuple store they like without adopting the whole engine.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
	"amri/internal/tuner"
	"amri/internal/tuple"
)

// Method selects the assessment method watching the index.
type Method int

const (
	// MethodCDIAHighest compacts hierarchically, rolling into the
	// highest-count parent — the paper's best performer and the default.
	MethodCDIAHighest Method = iota
	// MethodCDIARandom compacts hierarchically, rolling into a random
	// lattice parent.
	MethodCDIARandom
	// MethodSRIA keeps exact counts for every observed pattern.
	MethodSRIA
	// MethodCSRIA compacts with lossy counting (drops sub-threshold mass).
	MethodCSRIA
	// MethodDIA is the lattice twin of SRIA (identical reports).
	MethodDIA
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodSRIA:
		return "SRIA"
	case MethodCSRIA:
		return "CSRIA"
	case MethodDIA:
		return "DIA"
	case MethodCDIARandom:
		return "CDIA-random"
	case MethodCDIAHighest:
		return "CDIA-highest"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configure an AdaptiveIndex.
type Options struct {
	// NumAttrs is the size of the state's join attribute set (required).
	NumAttrs int
	// AttrMap maps IC field i to the tuple attribute position it reads;
	// nil means the identity mapping.
	AttrMap []int
	// BitBudget is the total IC bits (default 12).
	BitBudget int
	// DenseLimit is the dense/sparse directory crossover in total bits
	// (default bitindex.DefaultDenseLimit).
	DenseLimit int
	// Method is the assessment method (default MethodCDIAHighest).
	Method Method
	// Theta is the heavy-hitter threshold (default 0.04), Epsilon the
	// error rate (default 0.005).
	Theta, Epsilon float64
	// AutoTuneEvery triggers a tuning pass after that many observed
	// search requests; 0 disables auto-tuning (call Tune yourself).
	AutoTuneEvery uint64
	// MinGain is the migration hysteresis (default 0.02).
	MinGain float64
	// MaxBitsPerAttr optionally caps per-attribute bits at the attribute's
	// cardinality.
	MaxBitsPerAttr []uint8
	// Hasher overrides the attribute hash (default bitindex.DefaultHasher).
	Hasher bitindex.Hasher
	// MigrateGate, when set, is consulted each time a tuning pass
	// proposes a migration. Returning false makes the index start the
	// incremental migration, advance it one bounded step, then roll it
	// back via AbortMigration — a fault mid-migration, after which the
	// old directory stays authoritative. The fault-injection harness
	// (internal/fault) uses it to force reproducible migration aborts.
	MigrateGate func() bool
	// Cost carries the workload rates for Equation 1. Leave it zero to
	// self-calibrate: the expected scan size is taken from the live state
	// size and the request rate from the observed request/insert ratio.
	Cost cost.Params
	// Seed fixes the random-combination RNG.
	Seed uint64
	// Shards, when positive, backs the index with a lock-striped
	// bitindex.ShardedIndex of that many sub-directories (a power of two,
	// at most 256) and makes every AdaptiveIndex method safe for
	// concurrent use. Tuning then migrates incrementally — StartMigration
	// plus bounded MigrateStep advances on the insert path — so a retune
	// never stops the world. Zero keeps the flat single-threaded index
	// and the stop-the-world Migrate the deterministic simulator relies
	// on.
	Shards int
	// MigrateStepTuples bounds the incremental-migration work advanced
	// per insert while a sharded migration drains (default 64).
	MigrateStepTuples int
	// LegacyTuner reverts the retuning policy to v1 — MinGain hysteresis
	// only, no migration pricing, no cooldown — the A/B baseline the
	// tuner bench compares against.
	LegacyTuner bool
	// TuneHorizon is the migration amortization horizon in cost-model time
	// units: proposals migrate only when their modelled C_D gain over this
	// horizon exceeds the predicted migration cost (state relocation plus
	// the incremental drain's dual-directory window). Zero means auto:
	// four assessment windows, converted from probes to model time through
	// the calibrated request rate each pass (AutoTuneEvery counts probes;
	// one model time unit is one insert interval, so a window spans
	// AutoTuneEvery/LambdaR time units). Ignored under LegacyTuner.
	TuneHorizon float64
	// TuneCooldown is the minimum number of tuning passes between applied
	// migrations (default 2 — one window of silence after a migration;
	// sustained churn is damped by the economics gate, not by deafness);
	// flipping back to the configuration a migration just left is held
	// for twice as long. Ignored under LegacyTuner.
	TuneCooldown int
	// DriftSense scales how strongly observed access-pattern churn shrinks
	// the amortization horizon (default 4). Ignored under LegacyTuner.
	DriftSense float64

	autoCost bool
}

func (o *Options) fill() error {
	if o.NumAttrs <= 0 || o.NumAttrs > query.MaxAttrs {
		return fmt.Errorf("core: NumAttrs %d out of range", o.NumAttrs)
	}
	if o.AttrMap == nil {
		o.AttrMap = make([]int, o.NumAttrs)
		for i := range o.AttrMap {
			o.AttrMap[i] = i
		}
	}
	if len(o.AttrMap) != o.NumAttrs {
		return fmt.Errorf("core: AttrMap has %d entries, want %d", len(o.AttrMap), o.NumAttrs)
	}
	if o.BitBudget == 0 {
		o.BitBudget = 12
	}
	if o.BitBudget > bitindex.MaxTotalBits {
		// A budget past the bucket id is a misconfiguration the optimizer
		// would reject at every tuning pass; refuse it at construction.
		return fmt.Errorf("core: BitBudget %d exceeds the %d-bit bucket id", o.BitBudget, bitindex.MaxTotalBits)
	}
	if o.DenseLimit == 0 {
		o.DenseLimit = bitindex.DefaultDenseLimit
	}
	if o.Theta == 0 {
		o.Theta = 0.04
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.005
	}
	if o.MinGain == 0 {
		o.MinGain = 0.02
	}
	if o.Cost.LambdaD == 0 {
		o.autoCost = true
		o.Cost = cost.Params{LambdaD: 1, LambdaR: 1, Ch: 1, Cc: 0.25, Window: 1}
	}
	if o.MigrateStepTuples == 0 {
		o.MigrateStepTuples = 64
	}
	if !o.LegacyTuner {
		// TuneHorizon 0 stays 0 here: it means auto, recomputed every
		// tuning pass from the calibrated request rate (see tunePass).
		if o.TuneCooldown == 0 {
			o.TuneCooldown = 2
		}
		if o.DriftSense == 0 {
			o.DriftSense = 4
		}
	}
	return nil
}

// backend is the bit-address index behind an AdaptiveIndex: the flat
// single-threaded bitindex.Index or the lock-striped bitindex.ShardedIndex,
// selected by Options.Shards.
type backend interface {
	Insert(t *tuple.Tuple) bitindex.Stats
	Delete(t *tuple.Tuple) (bitindex.Stats, bool)
	Search(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats
	SearchMatch(p query.Pattern, vals []tuple.Value, m *bitindex.Matcher, ss *bitindex.SearchScratch, out []*tuple.Tuple) (bitindex.Stats, []*tuple.Tuple)
	Config() bitindex.Config
	Len() int
	MemBytes() int
	Migrating() bool
	StartMigration(newCfg bitindex.Config) error
	MigrateStep(n int) (bitindex.Stats, bool)
	AbortMigration() (bitindex.Stats, bool)
	Migrate(newCfg bitindex.Config) (bitindex.Stats, error)
}

var (
	_ backend = (*bitindex.Index)(nil)
	_ backend = (*bitindex.ShardedIndex)(nil)
)

// AdaptiveIndex is a self-tuning bit-address index for one state. With
// Options.Shards set it is safe for concurrent use: index operations run
// on the lock-striped backend, while the assessor and the bookkeeping
// counters — which have no internal synchronization — are guarded by mu.
// The guarded critical sections never enclose an index operation, so
// concurrent probes only serialize on the (cheap) statistics update.
type AdaptiveIndex struct {
	opts        Options
	ix          backend
	incremental bool // sharded backend: tuning migrates via MigrateStep

	// ctl is the long-lived retuning controller: cooldown, drift and
	// migration-cost calibration state live across tuning passes, and its
	// what-if ledger records every proposal. It has its own lock and is
	// never called with mu held.
	ctl *tuner.Controller

	// inserts is atomic (not mu-guarded) so concurrent shard-affine insert
	// workers never serialize on the statistics mutex. Padded onto its own
	// cache line: insert workers increment it while probe workers take mu,
	// and sharing the line would ping-pong it between cores.
	inserts atomic.Uint64
	_       [64]byte

	mu        sync.Mutex
	asr       assess.Assessor
	requests  uint64
	sinceTune uint64
	retunes   int
	aborted   int
	tuning    bool // claimed by the goroutine running a tuning pass
	tuneErr   error
}

// New builds an AdaptiveIndex with a uniform starting configuration.
func New(opts Options) (*AdaptiveIndex, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	var ix backend
	var err error
	if opts.Shards > 0 {
		ix, err = bitindex.NewSharded(bitindex.Uniform(opts.NumAttrs, opts.BitBudget), opts.AttrMap,
			opts.Hasher, opts.Shards, bitindex.WithDenseLimit(opts.DenseLimit))
	} else {
		ix, err = bitindex.New(bitindex.Uniform(opts.NumAttrs, opts.BitBudget), opts.AttrMap,
			opts.Hasher, bitindex.WithDenseLimit(opts.DenseLimit))
	}
	if err != nil {
		return nil, err
	}
	var asr assess.Assessor
	switch opts.Method {
	case MethodSRIA:
		asr = assess.NewSRIA()
	case MethodDIA:
		asr = assess.NewDIA()
	case MethodCSRIA:
		asr, err = assess.NewCSRIA(opts.Epsilon)
	case MethodCDIARandom:
		asr, err = assess.NewCDIA(opts.NumAttrs, opts.Epsilon, hh.RollupRandom, opts.Seed)
	case MethodCDIAHighest:
		asr, err = assess.NewCDIA(opts.NumAttrs, opts.Epsilon, hh.RollupHighestCount, opts.Seed)
	default:
		return nil, fmt.Errorf("core: unknown method %v", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	a := &AdaptiveIndex{opts: opts, ix: ix, incremental: opts.Shards > 0}
	// The concurrent backend drains MigrateStepTuples per insert, i.e.
	// step·λ_d tuples per time unit; the flat backend migrates
	// stop-the-world, so it has no dual-directory drain window.
	var drainRate float64
	if opts.Shards > 0 {
		drainRate = float64(opts.MigrateStepTuples) * opts.Cost.LambdaD
	}
	a.ctl = &tuner.Controller{
		Params:        opts.Cost,
		Budget:        opts.BitBudget,
		MinGain:       opts.MinGain,
		UseExhaustive: opts.NumAttrs <= 4 && opts.BitBudget <= 16,
		Opt:           tuner.Options{MaxBitsPerAttr: opts.MaxBitsPerAttr},
		Horizon:       opts.TuneHorizon,
		Cooldown:      opts.TuneCooldown,
		DriftSense:    opts.DriftSense,
		DrainRate:     drainRate,
	}
	a.mu.Lock()
	a.asr = asr
	a.mu.Unlock()
	return a, nil
}

// Insert stores a tuple. While an incremental migration is draining (the
// sharded backend's retune path) each insert also advances the drain by a
// bounded step, so migration work is paid on the maintenance path the
// paper's C_dt term prices, never as one stop-the-world stall.
func (a *AdaptiveIndex) Insert(t *tuple.Tuple) bitindex.Stats {
	a.inserts.Add(1)
	st := a.ix.Insert(t)
	if a.incremental && a.ix.Migrating() {
		mst, done := a.ix.MigrateStep(a.opts.MigrateStepTuples)
		st.Add(mst)
		// Feed the realized drain work back to the controller: the what-if
		// ledger gets its predicted-vs-realized row and the next migration
		// price is calibrated from observed per-tuple cost.
		a.ctl.RecordDrain(uint64(mst.Tuples), uint64(mst.Hashes), done)
	}
	return st
}

// Delete removes a stored tuple (pointer identity).
func (a *AdaptiveIndex) Delete(t *tuple.Tuple) (bitindex.Stats, bool) {
	return a.ix.Delete(t)
}

// Search executes one search request: the access pattern is recorded by the
// assessor, the matching bucket span is scanned, and — when auto-tuning is
// enabled — a tuning pass runs once enough requests have been observed.
// Visited tuples are bucket candidates; the caller applies its predicates.
//
//amrivet:hotpath per-probe adaptive search entry point
func (a *AdaptiveIndex) Search(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats {
	a.mu.Lock()
	a.asr.Observe(p)
	a.requests++
	a.sinceTune++
	due := a.opts.AutoTuneEvery > 0 && a.sinceTune >= a.opts.AutoTuneEvery && !a.tuning
	if due {
		a.tuning = true
	}
	a.mu.Unlock()
	st := a.ix.Search(p, vals, visit)
	if due {
		a.tunePass()
	}
	return st
}

// SearchMatch executes the index scan of one probe with the candidate
// filter applied inline and WITHOUT touching the assessor or the tuning
// counters: no mutex, no per-probe closure, survivors appended to the
// caller-owned out slice. It exists for dispatchers that batch their
// statistics — record the probes afterwards with ObserveSearches and run a
// due pass via TuneClaimed. Stats are identical to Search's, so the cost
// model sees the same work either way.
//
//amrivet:hotpath lock-free per-probe scan for the batched dispatch path
func (a *AdaptiveIndex) SearchMatch(p query.Pattern, vals []tuple.Value, m *bitindex.Matcher, ss *bitindex.SearchScratch, out []*tuple.Tuple) (bitindex.Stats, []*tuple.Tuple) {
	return a.ix.SearchMatch(p, vals, m, ss, out)
}

// ObserveSearches records n search requests with access pattern p — the
// deferred statistics half of n SearchMatch calls — under one statistics
// lock instead of n. It returns true when the observations make a tuning
// pass due AND the call claimed it: the caller must then invoke TuneClaimed
// (exactly once) to run the pass. Callers that batch per tick flush
// op-major in a deterministic order, which makes the tuning schedule
// reproducible across worker counts.
func (a *AdaptiveIndex) ObserveSearches(p query.Pattern, n uint64) (due bool) {
	if n == 0 {
		return false
	}
	a.mu.Lock()
	for i := uint64(0); i < n; i++ {
		a.asr.Observe(p)
	}
	a.requests += n
	a.sinceTune += n
	due = a.opts.AutoTuneEvery > 0 && a.sinceTune >= a.opts.AutoTuneEvery && !a.tuning
	if due {
		a.tuning = true
	}
	a.mu.Unlock()
	return due
}

// TuneClaimed runs the tuning pass a true ObserveSearches return claimed.
// Calling it without holding a claim corrupts the tuning flag; it is the
// pairing of the two methods that keeps Tune's single-flight guarantee.
func (a *AdaptiveIndex) TuneClaimed() (migrated bool, active bitindex.Config) {
	return a.tunePass()
}

// ShardOf returns the shard the tuple's bucket id routes to on a sharded
// backend, or 0 on the flat index — the partition key for shard-affine
// ingest batching.
func (a *AdaptiveIndex) ShardOf(t *tuple.Tuple) int {
	if sx, ok := a.ix.(*bitindex.ShardedIndex); ok {
		return sx.ShardOf(t)
	}
	return 0
}

// Tune runs one assessment + index-selection pass, migrating the index when
// the modelled improvement clears the hysteresis. It reports whether a
// migration happened and the now-active configuration, and resets the
// assessment window. If another goroutine is already tuning, Tune is a
// no-op.
func (a *AdaptiveIndex) Tune() (migrated bool, active bitindex.Config) {
	a.mu.Lock()
	if a.tuning {
		a.mu.Unlock()
		return false, a.ix.Config()
	}
	a.tuning = true
	a.mu.Unlock()
	return a.tunePass()
}

// tunePass is the body of a tuning pass; the caller must have claimed the
// tuning flag. The assessment snapshot and the counter updates run under
// mu, the index-selection search and any migration run outside it so
// concurrent probes are never blocked on the tuner.
//
//amrivet:coldpath tuning pass, runs once per assessment window
func (a *AdaptiveIndex) tunePass() (migrated bool, active bitindex.Config) {
	a.mu.Lock()
	stats := a.asr.Results(a.opts.Theta)
	params := a.opts.Cost
	requests, inserts := a.requests, a.inserts.Load()
	a.asr.Reset()
	a.sinceTune = 0
	a.mu.Unlock()
	if a.opts.autoCost {
		// Self-calibrate Eq. 1: the expected scan LambdaD·Window is the
		// observed state size, and the request rate is relative to the
		// insert rate seen so far.
		params.Window = float64(max(1, a.ix.Len()))
		if inserts > 0 {
			params.LambdaR = params.LambdaD * float64(requests) / float64(inserts)
		}
	}
	aborts := 0
	var passErr error
	// Skip the pass while a previous incremental migration is still
	// draining: a second StartMigration would fail anyway, and proposing
	// on top of an in-flight drain would clobber the controller's
	// predicted-vs-realized accounting. The window's statistics were
	// consumed; the next window re-evaluates on fresh ones.
	if !(a.incremental && a.ix.Migrating()) {
		if !a.opts.LegacyTuner && a.opts.TuneHorizon == 0 && params.LambdaR > 0 {
			// Auto horizon: four assessment windows, converted from the
			// probe-counted cadence to model time units (inserts) through
			// the request rate this pass was calibrated with.
			base := a.opts.AutoTuneEvery
			if base == 0 {
				base = 1024
			}
			a.ctl.SetHorizon(4 * float64(base) / params.LambdaR)
		}
		a.ctl.SetParams(params)
		pr, err := a.ctl.Propose(a.ix.Config(), stats, a.ix.Len())
		switch {
		case err != nil:
			passErr = err
		case !pr.Migrate():
		case a.opts.MigrateGate != nil && !a.opts.MigrateGate():
			// Injected fault mid-migration: run the real incremental
			// machinery a bounded step in, then roll it back, so the abort
			// path exercised here is the one production recovery relies on.
			if err := a.ix.StartMigration(pr.To); err == nil {
				a.ix.MigrateStep(a.opts.MigrateStepTuples)
				a.ix.AbortMigration()
			}
			a.ctl.RecordAbort()
			aborts = 1
		case a.incremental:
			// Sharded backend: begin an incremental migration and let the
			// insert path drain it in bounded steps — retuning never stops
			// the world.
			if err := a.ix.StartMigration(pr.To); err == nil {
				migrated = true
			} else {
				a.ctl.RecordAbort()
			}
		default:
			if mst, err := a.ix.Migrate(pr.To); err == nil {
				migrated = true
				a.ctl.RecordDrain(uint64(mst.Tuples), uint64(mst.Hashes), true)
			} else {
				a.ctl.RecordAbort()
			}
		}
	}
	a.mu.Lock()
	a.aborted += aborts
	if migrated {
		a.retunes++
	}
	if passErr != nil && a.tuneErr == nil {
		a.tuneErr = passErr
	}
	a.tuning = false
	a.mu.Unlock()
	return migrated, a.ix.Config()
}

// ShedAssessment drops the assessor's accumulated statistics and restarts
// the tuning window — the degradation response to memory pressure: the
// statistics are reconstructible, stored tuples are not.
func (a *AdaptiveIndex) ShedAssessment() {
	a.mu.Lock()
	a.asr.Reset()
	a.sinceTune = 0
	a.mu.Unlock()
}

// Config returns the active index configuration.
func (a *AdaptiveIndex) Config() bitindex.Config { return a.ix.Config() }

// ForceConfig migrates the index straight to cfg, bypassing the tuner, the
// hysteresis and the MigrateGate fault hook, and without counting a retune.
// It exists for crash recovery: a rebuilt index must come back under the
// configuration the tuner had reached — re-imposing persisted state, not
// making a new tuning decision, so no fault-injection event is consumed and
// the injector's schedule stays aligned with the pre-crash run.
func (a *AdaptiveIndex) ForceConfig(cfg bitindex.Config) error {
	if cfg.Equal(a.ix.Config()) {
		return nil
	}
	_, err := a.ix.Migrate(cfg)
	return err
}

// Len returns the number of stored tuples.
func (a *AdaptiveIndex) Len() int { return a.ix.Len() }

// Migrating reports whether an incremental migration is draining.
func (a *AdaptiveIndex) Migrating() bool { return a.ix.Migrating() }

// MemBytes returns the simulated resident size (index + statistics).
func (a *AdaptiveIndex) MemBytes() int {
	a.mu.Lock()
	sb := a.asr.MemBytes()
	a.mu.Unlock()
	return a.ix.MemBytes() + sb
}

// Requests returns the number of search requests observed.
func (a *AdaptiveIndex) Requests() uint64 {
	a.mu.Lock()
	n := a.requests
	a.mu.Unlock()
	return n
}

// Retunes returns the number of migrations performed.
func (a *AdaptiveIndex) Retunes() int {
	a.mu.Lock()
	n := a.retunes
	a.mu.Unlock()
	return n
}

// MigrationAborts returns the number of migrations rolled back by the
// MigrateGate fault hook.
func (a *AdaptiveIndex) MigrationAborts() int {
	a.mu.Lock()
	n := a.aborted
	a.mu.Unlock()
	return n
}

// TunerSummary returns the retuning controller's running decision counters
// (passes, migrations, thrash holds, predicted vs realized migration cost).
func (a *AdaptiveIndex) TunerSummary() tuner.Summary { return a.ctl.Summary() }

// TunerLedger returns a copy of the controller's retained what-if entries,
// oldest first.
func (a *AdaptiveIndex) TunerLedger() []tuner.Proposal { return a.ctl.Ledger() }

// TuneErr returns the first optimizer misconfiguration a tuning pass hit
// (nil when none): such passes keep the current configuration but no longer
// silently degrade to greedy, so the error is worth surfacing.
func (a *AdaptiveIndex) TuneErr() error {
	a.mu.Lock()
	err := a.tuneErr
	a.mu.Unlock()
	return err
}

// Method returns the active assessment method's name.
func (a *AdaptiveIndex) Method() string {
	a.mu.Lock()
	name := a.asr.Name()
	a.mu.Unlock()
	return name
}

// Stats exposes the assessor's current report (for inspection and demos).
func (a *AdaptiveIndex) Stats() []cost.APStat {
	a.mu.Lock()
	st := a.asr.Results(a.opts.Theta)
	a.mu.Unlock()
	return st
}

// String summarizes the adaptive index.
func (a *AdaptiveIndex) String() string {
	a.mu.Lock()
	name := a.asr.Name()
	retunes := a.retunes
	a.mu.Unlock()
	return fmt.Sprintf("AMRI{%v, %s, %d tuples, %d retunes}",
		a.ix.Config(), name, a.ix.Len(), retunes)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
