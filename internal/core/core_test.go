package core

import (
	"math/rand/v2"
	"strings"
	"testing"

	"amri/internal/bitindex"
	"amri/internal/query"
	"amri/internal/tuple"
)

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{NumAttrs: 0}); err == nil {
		t.Error("zero attrs should fail")
	}
	if _, err := New(Options{NumAttrs: 3, AttrMap: []int{0}}); err == nil {
		t.Error("short AttrMap should fail")
	}
	if _, err := New(Options{NumAttrs: 3, Method: Method(42)}); err == nil {
		t.Error("unknown method should fail")
	}
	a, err := New(Options{NumAttrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().TotalBits() != 12 {
		t.Fatalf("default budget = %d", a.Config().TotalBits())
	}
	if a.Method() != "CDIA-highest-count" {
		t.Fatalf("default method = %s", a.Method())
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[Method]string{
		MethodSRIA: "SRIA", MethodCSRIA: "CSRIA", MethodDIA: "DIA",
		MethodCDIARandom: "CDIA-random", MethodCDIAHighest: "CDIA-highest",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method string")
	}
}

func TestInsertSearchDelete(t *testing.T) {
	a, _ := New(Options{NumAttrs: 2, Seed: 1})
	t1 := tuple.New(0, 1, 0, []tuple.Value{5, 9})
	a.Insert(t1)
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
	found := false
	a.Search(query.PatternOf(0), []tuple.Value{5, 0}, func(x *tuple.Tuple) bool {
		found = found || x == t1
		return true
	})
	if !found {
		t.Fatal("search missed the stored tuple")
	}
	if a.Requests() != 1 {
		t.Fatalf("Requests = %d", a.Requests())
	}
	if _, ok := a.Delete(t1); !ok {
		t.Fatal("delete failed")
	}
	if a.Len() != 0 {
		t.Fatalf("Len after delete = %d", a.Len())
	}
}

// TestAdaptsToWorkload drives a skewed request mix and checks that tuning
// migrates bits toward the hot attribute.
func TestAdaptsToWorkload(t *testing.T) {
	a, err := New(Options{
		NumAttrs:  3,
		BitBudget: 6,
		Method:    MethodCDIAHighest,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 2000; i++ {
		a.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64N(256)), tuple.Value(rng.Uint64N(256)), tuple.Value(rng.Uint64N(256))}))
	}
	// 90% of searches constrain only attribute 2.
	for i := 0; i < 3000; i++ {
		p := query.PatternOf(2)
		if i%10 == 0 {
			p = query.FullPattern(3)
		}
		a.Search(p, []tuple.Value{1, 2, tuple.Value(rng.Uint64N(256))}, func(*tuple.Tuple) bool { return true })
	}
	migrated, cfg := a.Tune()
	if !migrated {
		t.Fatalf("expected a migration away from uniform; still %v", a.Config())
	}
	if cfg.Bits[2] <= cfg.Bits[0] || cfg.Bits[2] <= cfg.Bits[1] {
		t.Fatalf("hot attribute should get the most bits: %v", cfg)
	}
	if a.Retunes() != 1 {
		t.Fatalf("Retunes = %d", a.Retunes())
	}
}

func TestAutoTune(t *testing.T) {
	a, _ := New(Options{NumAttrs: 2, BitBudget: 4, AutoTuneEvery: 500, Seed: 1})
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 1000; i++ {
		a.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(rng.Uint64N(64)), tuple.Value(rng.Uint64N(64))}))
	}
	for i := 0; i < 1200; i++ {
		a.Search(query.PatternOf(1), []tuple.Value{0, tuple.Value(rng.Uint64N(64))}, func(*tuple.Tuple) bool { return true })
	}
	if a.Retunes() == 0 {
		t.Fatal("auto-tune never fired")
	}
	cfg := a.Config()
	if cfg.Bits[1] <= cfg.Bits[0] {
		t.Fatalf("auto-tune should favor the only searched attribute: %v", cfg)
	}
}

func TestTuneWithoutStatsKeepsConfig(t *testing.T) {
	a, _ := New(Options{NumAttrs: 2, Seed: 1})
	before := a.Config()
	migrated, after := a.Tune()
	if migrated || !after.Equal(before) {
		t.Fatal("tuning with no observations must be a no-op")
	}
}

func TestSearchAfterMigrationStillFindsEverything(t *testing.T) {
	a, _ := New(Options{NumAttrs: 2, BitBudget: 6, Seed: 1})
	var tuples []*tuple.Tuple
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 300; i++ {
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32))})
		tuples = append(tuples, tp)
		a.Insert(tp)
	}
	for i := 0; i < 1000; i++ {
		a.Search(query.PatternOf(0), []tuple.Value{tuple.Value(rng.Uint64N(32)), 0}, func(*tuple.Tuple) bool { return true })
	}
	a.Tune()
	for _, want := range tuples {
		found := false
		a.Search(query.FullPattern(2), want.Attrs, func(x *tuple.Tuple) bool {
			if x == want {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("tuple %v lost after migration to %v", want, a.Config())
		}
	}
}

func TestMemBytesAndStringer(t *testing.T) {
	a, _ := New(Options{NumAttrs: 2, Seed: 1})
	if a.MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive")
	}
	if !strings.Contains(a.String(), "AMRI{") {
		t.Fatalf("String = %q", a.String())
	}
	if !bitindex.Uniform(2, 12).Equal(a.Config()) {
		t.Fatal("fresh index should be uniform")
	}
}

func TestStatsExposesAssessment(t *testing.T) {
	a, _ := New(Options{NumAttrs: 3, Method: MethodSRIA, Seed: 1})
	a.Insert(tuple.New(0, 0, 0, []tuple.Value{1, 2, 3}))
	for i := 0; i < 10; i++ {
		a.Search(query.PatternOf(0), []tuple.Value{1, 0, 0}, func(*tuple.Tuple) bool { return true })
	}
	stats := a.Stats()
	if len(stats) != 1 || stats[0].P != query.PatternOf(0) {
		t.Fatalf("Stats = %v", stats)
	}
}

// TestMigrateGateAborts: a gate that vetoes every proposal must leave the
// configuration untouched, count the aborts, and keep every stored tuple
// findable — the rollback is the real bitindex abort path.
func TestMigrateGateAborts(t *testing.T) {
	a, err := New(Options{
		NumAttrs:    3,
		BitBudget:   6,
		Method:      MethodCDIAHighest,
		Seed:        1,
		MigrateGate: func() bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	before := a.Config()
	rng := rand.New(rand.NewPCG(3, 3))
	var stored []*tuple.Tuple
	for i := 0; i < 2000; i++ {
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64N(256)), tuple.Value(rng.Uint64N(256)), tuple.Value(rng.Uint64N(256))})
		stored = append(stored, tp)
		a.Insert(tp)
	}
	for i := 0; i < 3000; i++ {
		a.Search(query.PatternOf(2), []tuple.Value{1, 2, tuple.Value(rng.Uint64N(256))},
			func(*tuple.Tuple) bool { return true })
	}
	migrated, cfg := a.Tune()
	if migrated {
		t.Fatal("gated migration must not commit")
	}
	if !cfg.Equal(before) || !a.Config().Equal(before) {
		t.Fatalf("config moved despite abort: %v -> %v", before, a.Config())
	}
	if a.Retunes() != 0 {
		t.Fatalf("Retunes = %d, want 0", a.Retunes())
	}
	if a.MigrationAborts() != 1 {
		t.Fatalf("MigrationAborts = %d, want 1", a.MigrationAborts())
	}
	for _, want := range stored[:50] {
		found := false
		a.Search(query.FullPattern(3), want.Attrs, func(x *tuple.Tuple) bool {
			if x == want {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("tuple %v unfindable after aborted migration", want)
		}
	}
	// A permissive gate lets the next pass migrate normally.
	b, _ := New(Options{NumAttrs: 3, BitBudget: 6, Method: MethodCDIAHighest, Seed: 1,
		MigrateGate: func() bool { return true }})
	for _, tp := range stored {
		b.Insert(tp)
	}
	for i := 0; i < 3000; i++ {
		b.Search(query.PatternOf(2), []tuple.Value{1, 2, tuple.Value(rng.Uint64N(256))},
			func(*tuple.Tuple) bool { return true })
	}
	if migrated, _ := b.Tune(); !migrated {
		t.Fatal("permissive gate should not block the migration")
	}
	if b.MigrationAborts() != 0 {
		t.Fatalf("permissive gate counted aborts: %d", b.MigrationAborts())
	}
}

func TestShedAssessmentDropsStats(t *testing.T) {
	a, _ := New(Options{NumAttrs: 2, Seed: 1})
	a.Insert(tuple.New(0, 1, 0, []tuple.Value{5, 9}))
	for i := 0; i < 50; i++ {
		a.Search(query.PatternOf(0), []tuple.Value{5, 0}, func(*tuple.Tuple) bool { return true })
	}
	if len(a.Stats()) == 0 {
		t.Fatal("expected assessment mass before shedding")
	}
	a.ShedAssessment()
	if len(a.Stats()) != 0 {
		t.Fatalf("assessment mass survived shedding: %v", a.Stats())
	}
}
