package hashindex

import (
	"strings"
	"testing"
	"testing/quick"

	"amri/internal/query"
	"amri/internal/storage"
	"amri/internal/tuple"
)

var _ storage.Store = (*Store)(nil)

func newSensorStore(t *testing.T, pats ...query.Pattern) *Store {
	t.Helper()
	s, err := New(3, []int{0, 1, 2}, nil, pats)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, []int{0, 1}, nil, nil); err == nil {
		t.Error("short attrMap should fail")
	}
	if _, err := New(3, []int{0, 1, 2}, nil, []query.Pattern{0}); err == nil {
		t.Error("empty index pattern should fail")
	}
	if _, err := New(3, []int{0, 1, 2}, nil, []query.Pattern{query.PatternOf(5)}); err == nil {
		t.Error("out-of-JAS pattern should fail")
	}
	if _, err := New(3, []int{0, 1, 2}, nil, []query.Pattern{query.PatternOf(0), query.PatternOf(0)}); err == nil {
		t.Error("duplicate pattern should fail")
	}
}

// TestPaperSection1AExample reproduces the access-module example: indices
// on A1, A1&A2, A2&A3. sr1 (A1 and A3 constrained) must pick index A1;
// sr2 (only A3) has no suitable index and full scans.
func TestPaperSection1AExample(t *testing.T) {
	s := newSensorStore(t,
		query.PatternOf(0),    // A1
		query.PatternOf(0, 1), // A1&A2
		query.PatternOf(1, 2), // A2&A3
	)
	if s.NumIndices() != 3 {
		t.Fatalf("NumIndices = %d", s.NumIndices())
	}

	sr1 := query.PatternOf(0, 2) // A1=2012, A3=47
	if best := s.BestIndex(sr1); best != query.PatternOf(0) {
		t.Fatalf("sr1 best index = %v, want <A,*,*>", best)
	}
	sr2 := query.PatternOf(2) // A3=47 only
	if best := s.BestIndex(sr2); best != 0 {
		t.Fatalf("sr2 best index = %v, want none (full scan)", best)
	}
}

func TestBestIndexPrefersWidest(t *testing.T) {
	s := newSensorStore(t, query.PatternOf(0), query.PatternOf(0, 1))
	// Request constrains all three attributes: both indices qualify; the
	// two-attribute one must win ("largest number of attributes in sr").
	if best := s.BestIndex(query.FullPattern(3)); best != query.PatternOf(0, 1) {
		t.Fatalf("best = %v, want <A,B,*>", best)
	}
}

func TestInsertProbeDelete(t *testing.T) {
	s := newSensorStore(t, query.PatternOf(0))
	t1 := tuple.New(0, 1, 0, []tuple.Value{2012, 7, 47})
	t2 := tuple.New(0, 2, 0, []tuple.Value{2012, 8, 50})
	t3 := tuple.New(0, 3, 0, []tuple.Value{999, 9, 47})
	st := s.Insert(t1)
	if st.Hashes != 1 {
		t.Fatalf("insert hashes = %d, want 1 (one single-attr index)", st.Hashes)
	}
	s.Insert(t2)
	s.Insert(t3)

	// Probe via the A1 index.
	var got []*tuple.Tuple
	pst := s.Probe(query.PatternOf(0, 2), []tuple.Value{2012, 0, 47}, func(x *tuple.Tuple) bool {
		got = append(got, x)
		return true
	})
	if pst.Tuples != 2 {
		t.Fatalf("probe scanned %d candidates, want 2 (A1=2012 bucket)", pst.Tuples)
	}

	// Full-scan fallback probes everything.
	sc := s.Probe(query.PatternOf(2), []tuple.Value{0, 0, 47}, func(*tuple.Tuple) bool { return true })
	if sc.Tuples != 3 {
		t.Fatalf("fallback scanned %d, want all 3", sc.Tuples)
	}
	if sc.Hashes != 0 {
		t.Fatalf("full scan should not hash, got %d", sc.Hashes)
	}

	// Delete and re-probe.
	if _, ok := s.Delete(t1); !ok {
		t.Fatal("delete failed")
	}
	if _, ok := s.Delete(t1); ok {
		t.Fatal("double delete succeeded")
	}
	cnt := 0
	s.Probe(query.PatternOf(0), []tuple.Value{2012, 0, 0}, func(*tuple.Tuple) bool { cnt++; return true })
	if cnt != 1 {
		t.Fatalf("after delete, A1=2012 bucket has %d, want 1", cnt)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestMemGrowsWithIndexCount(t *testing.T) {
	mk := func(pats ...query.Pattern) int {
		s, _ := New(3, []int{0, 1, 2}, nil, pats)
		for i := 0; i < 100; i++ {
			s.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(i), tuple.Value(i), tuple.Value(i)}))
		}
		return s.MemBytes()
	}
	one := mk(query.PatternOf(0))
	three := mk(query.PatternOf(0), query.PatternOf(1), query.PatternOf(2))
	seven := mk(
		query.PatternOf(0), query.PatternOf(1), query.PatternOf(2),
		query.PatternOf(0, 1), query.PatternOf(0, 2), query.PatternOf(1, 2),
		query.PatternOf(0, 1, 2))
	if !(one < three && three < seven) {
		t.Fatalf("memory must grow with index count: %d, %d, %d", one, three, seven)
	}
	// Seven indices cost at least 6 extra key entries per tuple over one.
	if seven-one < 6*perKeyOverhead*100 {
		t.Fatalf("per-index memory undersized: one=%d seven=%d", one, seven)
	}
}

func TestInsertHashCostGrowsWithIndexCount(t *testing.T) {
	s := newSensorStore(t,
		query.PatternOf(0), query.PatternOf(0, 1), query.PatternOf(1, 2))
	st := s.Insert(tuple.New(0, 1, 0, []tuple.Value{1, 2, 3}))
	// 1 + 2 + 2 attribute hashes across the three indices.
	if st.Hashes != 5 {
		t.Fatalf("insert hashes = %d, want 5", st.Hashes)
	}
}

func TestRetune(t *testing.T) {
	s := newSensorStore(t, query.PatternOf(0))
	for i := 0; i < 50; i++ {
		s.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(i % 4), tuple.Value(i % 8), tuple.Value(i)}))
	}
	st, err := s.Retune([]query.Pattern{query.PatternOf(1), query.PatternOf(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 100 { // 50 tuples x 2 indices
		t.Fatalf("retune touched %d tuple-index pairs, want 100", st.Tuples)
	}
	if s.BestIndex(query.PatternOf(0)) != 0 {
		t.Fatal("old index should be gone")
	}
	cnt := 0
	s.Probe(query.PatternOf(1), []tuple.Value{0, 3, 0}, func(*tuple.Tuple) bool { cnt++; return true })
	if cnt == 0 {
		t.Fatal("new index returns no candidates")
	}
	// Invalid retune leaves the old set intact.
	if _, err := s.Retune([]query.Pattern{0}); err == nil {
		t.Fatal("bad retune should fail")
	}
	if s.BestIndex(query.PatternOf(1)) == 0 {
		t.Fatal("failed retune clobbered the index set")
	}
}

func TestStringMentionsIndices(t *testing.T) {
	s := newSensorStore(t, query.PatternOf(0, 1))
	if got := s.String(); !strings.Contains(got, "<A,B,*>") {
		t.Fatalf("String() = %q", got)
	}
}

// Property: a probe through any index returns a superset of the exact
// matches and a subset of the full arena; every tuple matching on the
// indexed attributes is visited.
func TestProbeCandidateSetSound(t *testing.T) {
	f := func(vals [][3]uint8, probe [3]uint8) bool {
		s, _ := New(3, []int{0, 1, 2}, nil, []query.Pattern{query.PatternOf(0, 1)})
		var all []*tuple.Tuple
		for i, v := range vals {
			tp := tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(v[0]), tuple.Value(v[1]), tuple.Value(v[2])})
			all = append(all, tp)
			s.Insert(tp)
		}
		want := map[*tuple.Tuple]bool{}
		for _, tp := range all {
			if tp.Attrs[0] == tuple.Value(probe[0]) && tp.Attrs[1] == tuple.Value(probe[1]) {
				want[tp] = true
			}
		}
		got := map[*tuple.Tuple]bool{}
		s.Probe(query.FullPattern(3), []tuple.Value{tuple.Value(probe[0]), tuple.Value(probe[1]), tuple.Value(probe[2])},
			func(x *tuple.Tuple) bool { got[x] = true; return true })
		for tp := range want {
			if !got[tp] {
				return false
			}
		}
		return len(got) <= len(all)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
