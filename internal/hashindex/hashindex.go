// Package hashindex implements the state-of-the-art AMR indexing baseline
// the paper compares against (Raman et al., "access modules"): a state
// stores its tuples once, and each of several hash indices maps one fixed
// attribute combination to the stored tuples. Every index costs an extra
// key entry per stored tuple — the memory and maintenance burden the
// paper's Section I-A example illustrates and its experiments show running
// out of memory.
package hashindex

import (
	"fmt"
	"sort"
	"strings"

	"amri/internal/bitindex"
	"amri/internal/query"
	"amri/internal/tuple"
)

// Store is a multi-hash-index state. It satisfies storage.Store.
type Store struct {
	numAttrs int
	attrMap  []int
	hasher   bitindex.Hasher

	tuples     []*tuple.Tuple
	pos        map[*tuple.Tuple]int
	tupleBytes int

	indices []*hashIdx
}

// hashIdx is one access module: a hash table over the attribute combination
// pat. Every stored tuple owns one key entry in every index.
type hashIdx struct {
	pat     query.Pattern
	buckets map[uint64][]*tuple.Tuple
}

// perKeyOverhead approximates the per-tuple, per-index resident cost of a
// hash key entry: the key object, its map bucket share, the link to the
// stored tuple, and allocator slack — the footprint that grows linearly in
// the number of access modules and is the memory burden of this design.
const perKeyOverhead = 128

// New builds a store over a JAS of numAttrs attributes with the given
// index set. attrMap[i] is the tuple attribute position for JAS position i;
// hasher may be nil for bitindex.DefaultHasher. Index patterns must be
// non-empty and distinct.
func New(numAttrs int, attrMap []int, hasher bitindex.Hasher, indexPatterns []query.Pattern) (*Store, error) {
	if len(attrMap) != numAttrs {
		return nil, fmt.Errorf("hashindex: attrMap has %d entries, want %d", len(attrMap), numAttrs)
	}
	if hasher == nil {
		hasher = bitindex.DefaultHasher
	}
	s := &Store{
		numAttrs: numAttrs,
		attrMap:  append([]int(nil), attrMap...),
		hasher:   hasher,
		pos:      make(map[*tuple.Tuple]int),
	}
	if err := s.setIndices(indexPatterns); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) setIndices(patterns []query.Pattern) error {
	seen := make(map[query.Pattern]bool)
	var idxs []*hashIdx
	for _, p := range patterns {
		if p == 0 {
			return fmt.Errorf("hashindex: empty index pattern")
		}
		if p&^query.FullPattern(s.numAttrs) != 0 {
			return fmt.Errorf("hashindex: pattern %v outside %d-attribute JAS", p, s.numAttrs)
		}
		if seen[p] {
			return fmt.Errorf("hashindex: duplicate index pattern %v", p)
		}
		seen[p] = true
		idxs = append(idxs, &hashIdx{pat: p, buckets: make(map[uint64][]*tuple.Tuple)})
	}
	// Deterministic order: widest first, then by BR, so best-index
	// selection ties break identically across runs.
	sort.Slice(idxs, func(i, j int) bool {
		if ci, cj := idxs[i].pat.Count(), idxs[j].pat.Count(); ci != cj {
			return ci > cj
		}
		return idxs[i].pat < idxs[j].pat
	})
	s.indices = idxs
	return nil
}

// NumIndices returns the number of access modules.
func (s *Store) NumIndices() int { return len(s.indices) }

// IndexPatterns returns the attribute combinations currently indexed, in
// the store's deterministic order.
func (s *Store) IndexPatterns() []query.Pattern {
	out := make([]query.Pattern, len(s.indices))
	for i, ix := range s.indices {
		out[i] = ix.pat
	}
	return out
}

// key hashes the attributes of p, reading values through read (tuple attr
// order for inserts, JAS order for probes).
func (s *Store) key(p query.Pattern, read func(jasPos int) tuple.Value) (uint64, int) {
	var h uint64
	hashes := 0
	for i := 0; i < s.numAttrs; i++ {
		if !p.Has(i) {
			continue
		}
		h = h*0x100000001b3 ^ s.hasher(i, read(i))
		hashes++
	}
	return h, hashes
}

// Insert stores the tuple and creates one key entry per index.
func (s *Store) Insert(t *tuple.Tuple) bitindex.Stats {
	s.pos[t] = len(s.tuples)
	s.tuples = append(s.tuples, t)
	s.tupleBytes += t.MemBytes()
	var st bitindex.Stats
	for _, ix := range s.indices {
		k, hashes := s.key(ix.pat, func(i int) tuple.Value { return t.Attrs[s.attrMap[i]] })
		ix.buckets[k] = append(ix.buckets[k], t)
		st.Hashes += hashes
		st.KeyOps++
	}
	return st
}

// Delete removes the tuple and all of its key entries.
func (s *Store) Delete(t *tuple.Tuple) (bitindex.Stats, bool) {
	i, ok := s.pos[t]
	if !ok {
		return bitindex.Stats{}, false
	}
	last := len(s.tuples) - 1
	s.tuples[i] = s.tuples[last]
	s.pos[s.tuples[i]] = i
	s.tuples[last] = nil
	s.tuples = s.tuples[:last]
	delete(s.pos, t)
	s.tupleBytes -= t.MemBytes()

	var st bitindex.Stats
	for _, ix := range s.indices {
		k, hashes := s.key(ix.pat, func(j int) tuple.Value { return t.Attrs[s.attrMap[j]] })
		st.Hashes += hashes
		st.KeyOps++
		b := ix.buckets[k]
		for j, x := range b {
			if x == t {
				b[j] = b[len(b)-1]
				b[len(b)-1] = nil
				if len(b) == 1 {
					delete(ix.buckets, k)
				} else {
					ix.buckets[k] = b[:len(b)-1]
				}
				break
			}
		}
	}
	return st, true
}

// BestIndex returns the most suitable index for the pattern — the one with
// the largest number of attributes contained in p and none outside p — or
// nil when no index qualifies (forcing a full scan), exactly the selection
// rule of Section I-A.
func (s *Store) BestIndex(p query.Pattern) query.Pattern {
	for _, ix := range s.indices { // sorted widest-first
		if ix.pat.Benefits(p) {
			return ix.pat
		}
	}
	return 0
}

// Probe visits candidates for the access pattern via the best index, or by
// full scan when none fits. vals is in JAS order.
func (s *Store) Probe(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) bitindex.Stats {
	var st bitindex.Stats
	best := s.BestIndex(p)
	if best == 0 {
		st.Buckets = 1
		for _, t := range s.tuples {
			st.Tuples++
			if !visit(t) {
				break
			}
		}
		return st
	}
	k, hashes := s.key(best, func(i int) tuple.Value { return vals[i] })
	st.Hashes = hashes
	st.Buckets = 1
	for _, t := range s.findBucket(best, k) {
		st.Tuples++
		if !visit(t) {
			break
		}
	}
	return st
}

func (s *Store) findBucket(p query.Pattern, k uint64) []*tuple.Tuple {
	for _, ix := range s.indices {
		if ix.pat == p {
			return ix.buckets[k]
		}
	}
	return nil
}

// Retune replaces the index set with the given patterns, rebuilding every
// index over the stored tuples. The returned stats capture the rebuild
// cost: one key computation per tuple per new index (the "create and
// delete multiple hash keys for each stored tuple" adaptation cost of
// Section III).
func (s *Store) Retune(patterns []query.Pattern) (bitindex.Stats, error) {
	old := s.indices
	if err := s.setIndices(patterns); err != nil {
		s.indices = old
		return bitindex.Stats{}, err
	}
	var st bitindex.Stats
	for _, t := range s.tuples {
		for _, ix := range s.indices {
			k, hashes := s.key(ix.pat, func(i int) tuple.Value { return t.Attrs[s.attrMap[i]] })
			ix.buckets[k] = append(ix.buckets[k], t)
			st.Hashes += hashes
			st.KeyOps++
			st.Tuples++
		}
	}
	return st, nil
}

// Len returns the number of stored tuples.
func (s *Store) Len() int { return len(s.tuples) }

// MemBytes returns the simulated resident size: the arena, the tuples, and
// one key entry per tuple per index — the term that grows linearly in the
// number of access modules.
func (s *Store) MemBytes() int {
	base := 96 + 8*len(s.tuples) + 48*len(s.pos) + s.tupleBytes
	for _, ix := range s.indices {
		base += 64 + perKeyOverhead*s.keyEntries(ix)
	}
	return base
}

func (s *Store) keyEntries(ix *hashIdx) int {
	// Every stored tuple owns exactly one entry per index.
	_ = ix
	return len(s.tuples)
}

// String summarizes the store for logs.
func (s *Store) String() string {
	var pats []string
	for _, ix := range s.indices {
		pats = append(pats, ix.pat.StringN(s.numAttrs))
	}
	return fmt.Sprintf("HashIndexStore{%d tuples, indices: %s}", len(s.tuples), strings.Join(pats, " "))
}
