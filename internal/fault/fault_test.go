package fault

import (
	"sync"
	"testing"
	"time"
)

func TestNilInjectorNeverInjects(t *testing.T) {
	var in *Injector
	for k := Kind(0); k < numKinds; k++ {
		if in.Decide(k, 0) {
			t.Fatalf("nil injector injected %v", k)
		}
		if in.Hits(k, 0) != 0 || in.TotalHits(k) != 0 {
			t.Fatal("nil injector reported hits")
		}
	}
	if in.Delay() != 0 {
		t.Fatal("nil injector reported a delay")
	}
	if New(None, 4) != nil {
		t.Fatal("the empty plan should build the nil injector")
	}
	if None.Enabled() {
		t.Fatal("None must be disabled")
	}
}

func TestRateExtremes(t *testing.T) {
	in := New(Plan{Seed: 7, PanicRate: 1}, 2)
	for i := 0; i < 100; i++ {
		if !in.Decide(OperatorPanic, 1) {
			t.Fatal("rate 1 must always inject")
		}
		if in.Decide(MailboxSaturate, 1) {
			t.Fatal("rate 0 must never inject")
		}
	}
	if in.Hits(OperatorPanic, 1) != 100 || in.Hits(OperatorPanic, 0) != 0 {
		t.Fatalf("hits miscounted: %d/%d", in.Hits(OperatorPanic, 1), in.Hits(OperatorPanic, 0))
	}
	if in.TotalHits(OperatorPanic) != 100 {
		t.Fatalf("TotalHits = %d", in.TotalHits(OperatorPanic))
	}
}

// TestDeterministicAcrossInterleavings is the injector's core contract:
// decisions depend only on each actor's own event count, so hammering the
// injector from concurrent goroutines yields exactly the hit counts of a
// sequential replay.
func TestDeterministicAcrossInterleavings(t *testing.T) {
	plan := Plan{Seed: 42, PanicRate: 0.1, SaturateRate: 0.3}
	const actors, events = 4, 5000

	sequential := New(plan, actors)
	for a := 0; a < actors; a++ {
		for i := 0; i < events; i++ {
			sequential.Decide(OperatorPanic, a)
			sequential.Decide(MailboxSaturate, a)
		}
	}

	concurrent := New(plan, actors)
	var wg sync.WaitGroup
	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(actor int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				concurrent.Decide(OperatorPanic, actor)
				concurrent.Decide(MailboxSaturate, actor)
			}
		}(a)
	}
	wg.Wait()

	for a := 0; a < actors; a++ {
		for _, k := range []Kind{OperatorPanic, MailboxSaturate} {
			if sequential.Hits(k, a) != concurrent.Hits(k, a) {
				t.Fatalf("actor %d kind %v: sequential %d != concurrent %d",
					a, k, sequential.Hits(k, a), concurrent.Hits(k, a))
			}
		}
	}
	if sequential.TotalHits(OperatorPanic) == 0 {
		t.Fatal("a 10% rate over 20000 events should have injected something")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := New(Plan{Seed: 1, PanicRate: 0.2}, 1)
	b := New(Plan{Seed: 2, PanicRate: 0.2}, 1)
	same := true
	for i := 0; i < 200; i++ {
		if a.Decide(OperatorPanic, 0) != b.Decide(OperatorPanic, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestDefaultPlan(t *testing.T) {
	p := Default(9)
	if !p.Enabled() {
		t.Fatal("Default plan must be enabled")
	}
	if p.Seed != 9 {
		t.Fatal("Default must carry the seed through")
	}
	in := New(p, 4)
	if in == nil {
		t.Fatal("Default plan should build a live injector")
	}
	if in.Delay() <= 0 {
		t.Fatal("Default plan must carry a positive delay")
	}
}

func TestDelayBackfill(t *testing.T) {
	in := New(Plan{Seed: 3, DelayRate: 0.5}, 1)
	if in.Delay() != 50*time.Microsecond {
		t.Fatalf("zero Delay with DelayRate set should default to 50µs, got %v", in.Delay())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		OperatorPanic:   "operator-panic",
		MailboxSaturate: "mailbox-saturate",
		MailboxDelay:    "mailbox-delay",
		MigrationAbort:  "migration-abort",
		MemoryPressure:  "memory-pressure",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string")
	}
}
