// Package fault is a deterministic, seeded fault injector for the
// concurrent pipeline. A Plan describes which fault classes fire and how
// often; an Injector evaluates the plan at runtime. Every decision is a
// pure function of (plan seed, fault kind, actor id, the actor's own event
// counter) — never of wall-clock time, goroutine interleaving, or a shared
// random source — so two runs in which each actor sees the same event
// counts inject exactly the same faults. That is what makes chaos runs
// reproducible: `go test -race` can assert that a seeded fault plan yields
// identical restart and shed counts run over run.
//
// The injector draws no randomness from math/rand at all (decisions are
// splitmix64 hashes of the seed), so the detrand analyzer's seeded-
// reproducibility invariant holds here by construction.
package fault

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// OperatorPanic crashes an operator goroutine while it handles an
	// arrival, before the tuple reaches the state. The supervisor's
	// panic recovery and checkpoint restart are what keep the run alive.
	OperatorPanic Kind = iota
	// MailboxSaturate forces an arrival delivery to behave as if the
	// target mailbox were full, shedding the message through the
	// overload-policy accounting path.
	MailboxSaturate
	// MailboxDelay stalls one delivery by the plan's Delay — a
	// timing-only fault that shakes out ordering assumptions under
	// -race without changing any count.
	MailboxDelay
	// MigrationAbort fails an index migration mid-MigrateStep; the
	// bitindex rollback must leave the old directory authoritative.
	MigrationAbort
	// MemoryPressure simulates a low-memory signal at an operator,
	// which responds by shedding its assessment statistics.
	MemoryPressure
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OperatorPanic:
		return "operator-panic"
	case MailboxSaturate:
		return "mailbox-saturate"
	case MailboxDelay:
		return "mailbox-delay"
	case MigrationAbort:
		return "migration-abort"
	case MemoryPressure:
		return "memory-pressure"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan is a seeded fault schedule. Rates are per-event probabilities in
// [0, 1] at each kind's injection site; a rate of 1 fires on every event,
// 0 never. The zero value injects nothing.
//
// Plans round-trip through JSON losslessly (durations encode as integer
// nanoseconds): amrichaos writes a minimized repro plan as JSON and
// `amripipe -replay` reloads it byte-for-byte equivalent, so a repro found
// in CI replays identically at a desk.
type Plan struct {
	// Seed keys every decision; the same seed reproduces the same fault
	// schedule against the same workload.
	Seed uint64 `json:"seed"`
	// PanicRate fires OperatorPanic per handled arrival.
	PanicRate float64 `json:"panic_rate,omitempty"`
	// SaturateRate fires MailboxSaturate per arrival delivery.
	SaturateRate float64 `json:"saturate_rate,omitempty"`
	// DelayRate fires MailboxDelay per delivery, stalling it by Delay.
	DelayRate float64 `json:"delay_rate,omitempty"`
	// Delay is the injected delivery stall (default 50µs when DelayRate
	// is set but Delay is zero). Encodes in JSON as nanoseconds.
	Delay time.Duration `json:"delay_ns,omitempty"`
	// AbortRate fires MigrationAbort per proposed index migration.
	AbortRate float64 `json:"abort_rate,omitempty"`
	// PressureRate fires MemoryPressure per handled probe.
	PressureRate float64 `json:"pressure_rate,omitempty"`
	// AssessCost is the simulated wall cost of one MemoryPressure shed
	// assessment: the operator holds its write lock for this long,
	// modeling the state reclamation a real low-memory signal triggers.
	// Zero charges nothing (the default; existing chaos plans keep their
	// timing). The contention benchmark drives its lock-convoy A/B with
	// this knob — see internal/bench/contention.go.
	AssessCost time.Duration `json:"assess_cost_ns,omitempty"`
	// CrashTicks schedules whole-run crashes: after the run completes
	// simulated tick T (state quiesced, WAL synced) for each T listed, the
	// run stops as if the process died, and pipeline.Recover resumes it at
	// T+1 from the durable store. Ticks must be ascending; a tick at or
	// past the run length never fires. Requires a durable store — the
	// pipeline rejects CrashTicks without one, because there would be
	// nothing to recover from.
	CrashTicks []int64 `json:"crash_ticks,omitempty"`
}

// None is the empty plan: no faults are ever injected.
var None = Plan{}

// Enabled reports whether the plan can inject anything at all. Crash
// scheduling is deliberately excluded: CrashTicks alone does not need an
// Injector, only a durable store.
func (p Plan) Enabled() bool {
	return p.PanicRate > 0 || p.SaturateRate > 0 || p.DelayRate > 0 ||
		p.AbortRate > 0 || p.PressureRate > 0
}

// NextCrash returns the first scheduled crash tick strictly after `after`,
// or ok=false when none remains. Pass -1 for the first crash of a run.
func (p Plan) NextCrash(after int64) (int64, bool) {
	for _, t := range p.CrashTicks {
		if t > after {
			return t, true
		}
	}
	return 0, false
}

// rate returns the plan's probability for one kind.
func (p Plan) rate(k Kind) float64 {
	switch k {
	case OperatorPanic:
		return p.PanicRate
	case MailboxSaturate:
		return p.SaturateRate
	case MailboxDelay:
		return p.DelayRate
	case MigrationAbort:
		return p.AbortRate
	case MemoryPressure:
		return p.PressureRate
	default:
		return 0
	}
}

// Default returns a modest chaos plan keyed by seed: occasional operator
// panics and forced saturation, short delivery stalls, every fourth
// proposed migration aborted, and rare memory-pressure signals. It is the
// plan cmd/amripipe's -chaos-seed flag runs.
func Default(seed uint64) Plan {
	return Plan{
		Seed:         seed,
		PanicRate:    0.001,
		SaturateRate: 0.002,
		DelayRate:    0.001,
		Delay:        50 * time.Microsecond,
		AbortRate:    0.25,
		PressureRate: 0.0005,
	}
}

// Injector evaluates a plan's decisions for one run over a fixed set of
// actors (operators). Each (kind, actor) pair owns an event counter, so
// concurrent actors never perturb each other's schedules. A nil *Injector
// never injects; every method is nil-safe so the disabled path costs one
// branch.
type Injector struct {
	plan   Plan
	actors int
	seq    []counter // event counters, kind-major
	hits   []counter // injected-fault counters, kind-major
}

// counter is an atomic event counter alone on its cache line. The counter
// arrays are kind-major with one slot per actor, and every actor bumps its
// slot on every event — unpadded neighbours would false-share the line.
type counter struct {
	atomic.Uint64
	_ [56]byte
}

// New builds an injector for the plan over `actors` actors. A disabled
// plan (or no actors) yields nil, the never-inject injector.
func New(plan Plan, actors int) *Injector {
	if !plan.Enabled() || actors <= 0 {
		return nil
	}
	if plan.DelayRate > 0 && plan.Delay <= 0 {
		plan.Delay = 50 * time.Microsecond
	}
	n := int(numKinds) * actors
	return &Injector{
		plan:   plan,
		actors: actors,
		seq:    make([]counter, n),
		hits:   make([]counter, n),
	}
}

// Decide consumes one event for (kind, actor) and reports whether the
// plan injects a fault there. Decisions for an actor depend only on how
// many events that actor has already presented, so they are reproducible
// across runs regardless of scheduling.
func (in *Injector) Decide(k Kind, actor int) bool {
	if in == nil {
		return false
	}
	r := in.plan.rate(k)
	if r <= 0 {
		return false
	}
	i := int(k)*in.actors + actor
	n := in.seq[i].Add(1) - 1
	if !hashDecide(in.plan.Seed, k, actor, n, r) {
		return false
	}
	in.hits[i].Add(1)
	return true
}

// Delay returns the plan's delivery stall duration.
func (in *Injector) Delay() time.Duration {
	if in == nil {
		return 0
	}
	return in.plan.Delay
}

// AssessCost returns the plan's simulated shed-assessment duration.
func (in *Injector) AssessCost() time.Duration {
	if in == nil {
		return 0
	}
	return in.plan.AssessCost
}

// Hits returns how many faults of kind k were injected at actor.
func (in *Injector) Hits(k Kind, actor int) uint64 {
	if in == nil {
		return 0
	}
	return in.hits[int(k)*in.actors+actor].Load()
}

// TotalHits sums Hits over all actors.
func (in *Injector) TotalHits(k Kind) uint64 {
	if in == nil {
		return 0
	}
	var total uint64
	for a := 0; a < in.actors; a++ {
		total += in.hits[int(k)*in.actors+a].Load()
	}
	return total
}

// Snapshot captures every (kind, actor) event and hit counter as a flat
// slice — seq counters first, hits second, both kind-major. Because every
// decision is a pure function of (seed, kind, actor, counter), restoring
// the counters into a fresh injector resumes the fault schedule exactly
// where the snapshot left it: recovery replays no fault twice and skips
// none. A nil injector snapshots to nil.
func (in *Injector) Snapshot() []uint64 {
	if in == nil {
		return nil
	}
	out := make([]uint64, 2*len(in.seq))
	for i := range in.seq {
		out[i] = in.seq[i].Load()
	}
	for i := range in.hits {
		out[len(in.seq)+i] = in.hits[i].Load()
	}
	return out
}

// Restore loads a Snapshot taken from an injector with the same plan and
// actor count. A mismatched length means the checkpoint came from a
// differently-shaped run and is rejected.
func (in *Injector) Restore(snap []uint64) error {
	if in == nil {
		if len(snap) == 0 {
			return nil
		}
		return fmt.Errorf("fault: restoring %d counters into nil injector", len(snap))
	}
	if len(snap) != 2*len(in.seq) {
		return fmt.Errorf("fault: snapshot has %d counters, injector wants %d", len(snap), 2*len(in.seq))
	}
	for i := range in.seq {
		in.seq[i].Store(snap[i])
	}
	for i := range in.hits {
		in.hits[i].Store(snap[len(in.seq)+i])
	}
	return nil
}

// hashDecide maps (seed, kind, actor, n) to a uniform draw in [0,1) and
// compares it against the rate.
func hashDecide(seed uint64, k Kind, actor int, n uint64, rate float64) bool {
	x := seed
	x ^= 0x9e3779b97f4a7c15 * uint64(k+1)
	x ^= 0xbf58476d1ce4e5b9 * uint64(actor+1)
	x ^= 0x94d049bb133111eb * (n + 1)
	u := float64(splitmix64(x)>>11) / (1 << 53)
	return u < rate
}

// splitmix64 is the finalizer of Vigna's SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
