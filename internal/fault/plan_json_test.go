package fault

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	plans := []Plan{
		None,
		Default(42),
		{
			Seed:         7,
			PanicRate:    0.004,
			SaturateRate: 0.01,
			DelayRate:    0.002,
			Delay:        75 * time.Microsecond,
			AbortRate:    1.0,
			PressureRate: 0.01,
			AssessCost:   3 * time.Microsecond,
			CrashTicks:   []int64{5, 17, 90},
		},
	}
	for i, p := range plans {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("plan %d: marshal: %v", i, err)
		}
		var got Plan
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("plan %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("plan %d round-trip:\n got %+v\nwant %+v", i, got, p)
		}
		// Stability: re-encoding the decoded plan is byte-identical, so a
		// repro file survives load/save cycles unchanged.
		again, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("plan %d: re-marshal: %v", i, err)
		}
		if string(again) != string(data) {
			t.Fatalf("plan %d: unstable encoding:\n first %s\nsecond %s", i, data, again)
		}
	}
}

func TestPlanNextCrash(t *testing.T) {
	p := Plan{CrashTicks: []int64{3, 8, 8, 20}}
	cases := []struct {
		after int64
		tick  int64
		ok    bool
	}{
		{-1, 3, true},
		{3, 8, true},
		{8, 20, true},
		{19, 20, true},
		{20, 0, false},
	}
	for _, c := range cases {
		tick, ok := p.NextCrash(c.after)
		if ok != c.ok || (ok && tick != c.tick) {
			t.Fatalf("NextCrash(%d) = (%d, %v), want (%d, %v)", c.after, tick, ok, c.tick, c.ok)
		}
	}
	if _, ok := None.NextCrash(-1); ok {
		t.Fatal("empty plan scheduled a crash")
	}
}

func TestPlanCrashTicksDoNotEnableInjection(t *testing.T) {
	p := Plan{Seed: 1, CrashTicks: []int64{10}}
	if p.Enabled() {
		t.Fatal("CrashTicks alone should not enable the injector")
	}
	if New(p, 4) != nil {
		t.Fatal("New should return nil for a crash-only plan")
	}
}

func TestInjectorSnapshotRestore(t *testing.T) {
	plan := Plan{Seed: 99, PanicRate: 0.5, SaturateRate: 0.3}
	const actors = 3

	// Drive a reference injector for a prefix, snapshot, then keep driving
	// it while a restored twin replays the suffix. Decisions must match
	// event for event, and hit counters must carry over.
	ref := New(plan, actors)
	for i := 0; i < 200; i++ {
		ref.Decide(OperatorPanic, i%actors)
		ref.Decide(MailboxSaturate, i%actors)
	}
	snap := ref.Snapshot()
	if len(snap) == 0 {
		t.Fatal("snapshot of live injector is empty")
	}

	twin := New(plan, actors)
	if err := twin.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for a := 0; a < actors; a++ {
		if twin.Hits(OperatorPanic, a) != ref.Hits(OperatorPanic, a) {
			t.Fatalf("actor %d panic hits diverge after restore", a)
		}
	}
	for i := 0; i < 200; i++ {
		a := i % actors
		if ref.Decide(OperatorPanic, a) != twin.Decide(OperatorPanic, a) {
			t.Fatalf("suffix decision %d diverged (OperatorPanic, actor %d)", i, a)
		}
		if ref.Decide(MailboxSaturate, a) != twin.Decide(MailboxSaturate, a) {
			t.Fatalf("suffix decision %d diverged (MailboxSaturate, actor %d)", i, a)
		}
	}
	if ref.TotalHits(OperatorPanic) != twin.TotalHits(OperatorPanic) {
		t.Fatal("total panic hits diverge after identical suffix")
	}

	// Shape mismatches are rejected, not silently misapplied.
	if err := twin.Restore(snap[:len(snap)-1]); err == nil {
		t.Fatal("short snapshot accepted")
	}
	other := New(plan, actors+1)
	if err := other.Restore(snap); err == nil {
		t.Fatal("snapshot from different actor count accepted")
	}

	// Nil injector: nil snapshot round-trips; counters into nil rejected.
	var nilInj *Injector
	if nilInj.Snapshot() != nil {
		t.Fatal("nil injector snapshot not nil")
	}
	if err := nilInj.Restore(nil); err != nil {
		t.Fatalf("nil restore nil: %v", err)
	}
	if err := nilInj.Restore(snap); err == nil {
		t.Fatal("restoring counters into nil injector accepted")
	}
}
