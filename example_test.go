package amri_test

import (
	"fmt"

	"amri"
)

// ExampleNewAdaptiveIndex shows the smallest useful AMRI: index a state on
// two join attributes, search it, and let it retune to the workload.
func ExampleNewAdaptiveIndex() {
	ix, _ := amri.NewAdaptiveIndex(amri.IndexOptions{NumAttrs: 2, BitBudget: 6, Seed: 1})

	for i := 0; i < 1000; i++ {
		ix.Insert(amri.NewTuple(0, uint64(i), 0, []amri.Value{
			amri.Value(i % 50), amri.Value(i % 40)}))
	}
	// The workload only ever constrains attribute B.
	for i := 0; i < 3000; i++ {
		ix.Search(amri.PatternOf(1), []amri.Value{0, amri.Value(i % 40)},
			func(*amri.Tuple) bool { return true })
	}
	migrated, cfg := ix.Tune()
	fmt.Println("migrated:", migrated)
	fmt.Println("bits on A:", cfg.Bits[0], "bits on B:", cfg.Bits[1] > cfg.Bits[0])
	// Output:
	// migrated: true
	// bits on A: 0 bits on B: true
}

// ExamplePatternOf shows the paper's access-pattern notation round trip.
func ExamplePatternOf() {
	p := amri.PatternOf(0, 2)
	fmt.Println(p.StringN(3))
	back, _ := amri.ParsePattern("<A,*,C>")
	fmt.Println(back == p)
	// Output:
	// <A,*,C>
	// true
}

// ExampleNewMultiHashIndex reproduces the Section I-A selection rule: sr1
// finds a suitable index, sr2 does not.
func ExampleNewMultiHashIndex() {
	h, _ := amri.NewMultiHashIndex(3, nil, []amri.Pattern{
		amri.PatternOf(0),    // A1
		amri.PatternOf(0, 1), // A1&A2
		amri.PatternOf(1, 2), // A2&A3
	})
	sr1 := amri.PatternOf(0, 2)
	sr2 := amri.PatternOf(2)
	fmt.Println("sr1 best index:", h.BestIndex(sr1).StringN(3))
	fmt.Println("sr2 has index:", h.BestIndex(sr2) != 0)
	// Output:
	// sr1 best index: <A,*,*>
	// sr2 has index: false
}

// ExampleNewAggregator computes tumbling-window aggregates over a stream of
// join results.
func ExampleNewAggregator() {
	aggr, _ := amri.NewAggregator([]amri.AggSpec{
		{Func: amri.AggCount},
		{Func: amri.AggSum, Arg: amri.AggRef{Stream: 1, Attr: 0}},
	}, nil, 10)

	emit := func(tick int64, v amri.Value) {
		a := amri.NewTuple(0, 0, tick, []amri.Value{1})
		b := amri.NewTuple(1, 0, tick, []amri.Value{v})
		aggr.Observe(amri.NewComposite(2, a).Extend(b), tick)
	}
	emit(1, 5)
	emit(3, 7)
	emit(12, 100)

	for _, w := range aggr.Flush() {
		fmt.Printf("window %d: count=%v sum=%v\n", w.WindowStart, w.Values[0], w.Values[1])
	}
	// Output:
	// window 0: count=2 sum=12
	// window 10: count=1 sum=100
}
