module amri

go 1.24
